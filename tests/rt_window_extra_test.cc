// Additional runtime-surface tests: datatype'd window reads via
// get_blocks composition, zero-size windows, heterogeneous window sizes,
// many windows, and measured-scale configuration.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "datatype/datatype.h"
#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/error.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;
using rmasim::Window;

Engine::Config ecfg(int nranks) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

TEST(WindowExtra, HeterogeneousSizesPerRank) {
  Engine e(ecfg(4));
  e.run([](Process& p) {
    // Rank r exposes (r+1) * 64 bytes.
    std::vector<std::uint8_t> mine(static_cast<std::size_t>(p.rank() + 1) * 64,
                                   static_cast<std::uint8_t>(p.rank()));
    const Window w = p.win_create(mine.data(), mine.size());
    p.barrier();
    for (int t = 0; t < 4; ++t) {
      EXPECT_EQ(p.win_size(w, t), static_cast<std::size_t>(t + 1) * 64);
    }
    // Reading the last byte of rank 3's window works; one past throws.
    std::uint8_t b = 0;
    p.get(&b, 1, 3, 255, w);
    p.flush(3, w);
    EXPECT_EQ(b, 3);
    EXPECT_THROW(p.get(&b, 1, 0, 64, w), util::ContractError);
    p.barrier();
    p.win_free(w);
  });
}

TEST(WindowExtra, ZeroSizeContribution) {
  // MPI allows zero-size window contributions (common for asymmetric
  // server/client layouts).
  Engine e(ecfg(2));
  e.run([](Process& p) {
    std::vector<std::uint8_t> mine(p.rank() == 0 ? 128 : 0, 0x77);
    const Window w = p.win_create(mine.empty() ? nullptr : mine.data(), mine.size());
    p.barrier();
    if (p.rank() == 1) {
      std::uint8_t b = 0;
      p.get(&b, 1, 0, 100, w);
      p.flush(0, w);
      EXPECT_EQ(b, 0x77);
      EXPECT_THROW(p.get(&b, 1, 1, 0, w), util::ContractError);  // size 0
    }
    p.barrier();
    p.win_free(w);
  });
}

TEST(WindowExtra, ManyLiveWindows) {
  Engine e(ecfg(2));
  e.run([](Process& p) {
    std::vector<std::vector<std::uint32_t>> mem(20);
    std::vector<Window> wins;
    for (std::uint32_t i = 0; i < 20; ++i) {
      mem[i].assign(8, 1000 * i + p.rank());
      wins.push_back(p.win_create(mem[i].data(), mem[i].size() * sizeof(std::uint32_t)));
    }
    p.barrier();
    for (std::uint32_t i = 0; i < 20; ++i) {
      std::uint32_t got = 0;
      p.get(&got, sizeof(got), 1 - p.rank(), 0, wins[i]);
      p.flush_all(wins[i]);
      EXPECT_EQ(got, 1000 * i + static_cast<std::uint32_t>(1 - p.rank()));
    }
    p.barrier();
    for (auto& w : wins) p.win_free(w);
  });
}

TEST(WindowExtra, DatatypeGetBlocksRoundTrip) {
  // Compose the datatype layer with get_blocks the way CachedWindow's
  // typed path does, and verify against pack() of the raw memory.
  Engine e(ecfg(2));
  e.run([](Process& p) {
    std::vector<std::uint8_t> mine(512);
    std::iota(mine.begin(), mine.end(), static_cast<std::uint8_t>(p.rank()));
    const Window w = p.win_create(mine.data(), mine.size());
    p.barrier();
    const auto t = dt::Datatype::indexed({2, 1, 3}, {0, 5, 9}, dt::Datatype::contiguous(4));
    const auto blocks = t.flatten(3);
    std::vector<rmasim::Process::Block> rb;
    for (const auto& b : blocks) rb.push_back({b.offset, b.size});
    std::vector<std::uint8_t> got(t.size_of(3));
    p.get_blocks(got.data(), 1 - p.rank(), 32, rb.data(), rb.size(), w);
    p.flush_all(w);

    std::vector<std::uint8_t> want(t.size_of(3));
    // pack from the peer's memory image (deterministic pattern).
    std::vector<std::uint8_t> peer_mem(512);
    std::iota(peer_mem.begin(), peer_mem.end(), static_cast<std::uint8_t>(1 - p.rank()));
    t.pack(peer_mem.data() + 32, 3, want.data());
    EXPECT_EQ(got, want);
    p.barrier();
    p.win_free(w);
  });
}

TEST(WindowExtra, MeasuredScaleMultipliesUserTime) {
  auto measure = [](double scale) {
    Engine::Config cfg = ecfg(1);
    cfg.time_policy = rmasim::TimePolicy::kMeasured;
    cfg.measured_scale = scale;
    Engine e(cfg);
    auto t = std::make_shared<double>(0.0);
    e.run([t](Process& p) {
      volatile double x = 1.0;
      for (int i = 0; i < 3000000; ++i) x = x * 1.0000001 + 0.5;
      *t = p.now_us();
    });
    return *t;
  };
  const double t1 = measure(1.0);
  const double t4 = measure(4.0);
  EXPECT_GT(t4, 2.0 * t1);  // loose: the two loops take similar real time
}

TEST(WindowExtra, PutGetDisjointRegionsSameEpoch) {
  // MPI allows puts and gets in one epoch when they target disjoint
  // regions; verify both complete and land correctly.
  Engine e(ecfg(2));
  e.run([](Process& p) {
    std::vector<std::uint32_t> mem(16, 7u + p.rank());
    const Window w = p.win_create(mem.data(), mem.size() * sizeof(std::uint32_t));
    p.barrier();
    if (p.rank() == 0) {
      const std::uint32_t v = 42;
      std::uint32_t got = 0;
      p.put(&v, sizeof(v), 1, 0, w);                      // word 0
      p.get(&got, sizeof(got), 1, 8 * sizeof(std::uint32_t), w);  // word 8
      p.flush(1, w);
      EXPECT_EQ(got, 8u);
    }
    p.barrier();
    if (p.rank() == 1) {
      EXPECT_EQ(mem[0], 42u);
      EXPECT_EQ(mem[8], 8u);
    }
    p.barrier();
    p.win_free(w);
  });
}

}  // namespace
