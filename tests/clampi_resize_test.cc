// Tests for geometry changes: CacheCore::resize sequences, the cuckoo
// index's move assignment (which resize relies on), and statistics
// continuity across adjustments.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "clampi/cache.h"
#include "clampi/cuckoo_index.h"
#include "util/rng.h"

namespace {

using namespace clampi;

struct RawOps {
  std::vector<std::uint64_t> keys;
  std::uint64_t hash_key(std::uint32_t id) const { return keys[id]; }
};

TEST(CuckooMove, MoveAssignmentKeepsLookups) {
  // CacheCore::resize move-assigns a fresh index over the old one; the
  // moved-into index must be fully functional.
  RawOps ops;
  CuckooIndex<RawOps> idx(64, 4, 64, 1, &ops);
  idx = CuckooIndex<RawOps>(256, 4, 64, 2, &ops);
  clampi::util::Xoshiro256 rng(3);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 150; ++i) {
    const std::uint64_t k = rng();
    ops.keys.push_back(k);
    if (idx.insert(k, static_cast<std::uint32_t>(ops.keys.size() - 1), nullptr)) {
      keys.push_back(k);
    }
  }
  EXPECT_EQ(idx.nslots(), 256u);
  EXPECT_GT(keys.size(), 140u);
  for (const auto k : keys) {
    EXPECT_NE(idx.lookup(k, [&](std::uint32_t id) { return ops.keys[id] == k; }),
              kNoEntry);
  }
  EXPECT_TRUE(idx.validate());
}

Config base_cfg() {
  Config cfg;
  cfg.mode = Mode::kAlwaysCache;
  cfg.index_entries = 128;
  cfg.storage_bytes = 64 * 1024;
  return cfg;
}

void fill(CacheCore& c, int n, std::uint64_t stride = 4096) {
  std::vector<std::uint8_t> buf(256, 1);
  for (int i = 0; i < n; ++i) {
    const auto r = c.access({0, static_cast<std::uint64_t>(i) * stride}, 256);
    if (r.inserted) {
      std::memcpy(c.entry_data(r.entry), buf.data(), 256);
      c.mark_cached(r.entry);
    }
  }
}

TEST(Resize, GrowShrinkSequence) {
  CacheCore c(base_cfg());
  fill(c, 50);
  EXPECT_EQ(c.cached_entries(), 50u);
  c.resize(512, 256 * 1024);  // grow both
  EXPECT_EQ(c.index_entries(), 512u);
  EXPECT_EQ(c.cached_entries(), 0u);  // resize invalidates
  fill(c, 100);
  EXPECT_EQ(c.cached_entries(), 100u);
  c.resize(128, 64 * 1024);  // shrink back
  fill(c, 30);
  EXPECT_EQ(c.cached_entries(), 30u);
  EXPECT_TRUE(c.validate());
  EXPECT_EQ(c.stats().adjustments, 2u);
  EXPECT_EQ(c.stats().invalidations, 2u);
}

TEST(Resize, CountersPersistAcrossResizes) {
  CacheCore c(base_cfg());
  fill(c, 20);
  fill(c, 20);  // same keys: hits
  const auto hits_before = c.stats().hits_full;
  EXPECT_EQ(hits_before, 20u);
  c.resize(256, 128 * 1024);
  // Lifetime counters survive the resize (the adaptive tuner and the
  // evaluation statistics depend on it).
  EXPECT_EQ(c.stats().hits_full, hits_before);
  EXPECT_EQ(c.stats().total_gets, 40u);
  // g_ (the C_w.G sequence counter) also persists: new entries keep
  // monotonically increasing `last` values.
  fill(c, 5);
  EXPECT_EQ(c.processed_gets(), 45u);
}

TEST(Resize, RepeatedDoublingMirrorsAdaptiveGrowth) {
  CacheCore c(base_cfg());
  std::size_t ie = c.index_entries();
  std::size_t sb = c.storage_bytes();
  for (int step = 0; step < 6; ++step) {
    ie *= 2;
    sb *= 2;
    c.resize(ie, sb);
    fill(c, 64);
    ASSERT_TRUE(c.validate()) << "step " << step;
    ASSERT_EQ(c.cached_entries(), 64u);
  }
  EXPECT_EQ(c.index_entries(), 128u * 64u);
}

TEST(Resize, SmallerStorageStillServes) {
  CacheCore c(base_cfg());
  c.resize(128, 1024);  // tiny: at most 4 x 256B entries
  fill(c, 20);
  EXPECT_LE(c.cached_entries(), 4u);
  EXPECT_GT(c.stats().capacity + c.stats().failing, 0u);
  EXPECT_TRUE(c.validate());
}

TEST(Resize, AverageGetSizePersists) {
  CacheCore c(base_cfg());
  std::vector<std::uint8_t> buf(512, 1);
  for (int i = 0; i < 10; ++i) {
    const auto r = c.access({0, static_cast<std::uint64_t>(i) * 4096}, 512);
    if (r.inserted) {
      std::memcpy(c.entry_data(r.entry), buf.data(), 512);
      c.mark_cached(r.entry);
    }
  }
  const double ags = c.average_get_size();
  EXPECT_DOUBLE_EQ(ags, 512.0);
  c.resize(256, 128 * 1024);
  // ags is a lifetime running mean over C_w.G (Sec. III-C2).
  EXPECT_DOUBLE_EQ(c.average_get_size(), ags);
}

}  // namespace
