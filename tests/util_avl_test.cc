// Unit and property tests for the generic AVL tree underlying the CLaMPI
// storage allocator.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "util/avl_tree.h"
#include "util/rng.h"

namespace {

using clampi::util::AvlTree;
using clampi::util::Xoshiro256;

TEST(AvlTree, EmptyTreeBasics) {
  AvlTree<int, int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_EQ(t.lower_bound(0), nullptr);
  EXPECT_EQ(t.min(), nullptr);
  EXPECT_EQ(t.max(), nullptr);
  EXPECT_TRUE(t.validate());
}

TEST(AvlTree, InsertFindErase) {
  AvlTree<int, std::string> t;
  EXPECT_TRUE(t.insert(5, "five"));
  EXPECT_TRUE(t.insert(3, "three"));
  EXPECT_TRUE(t.insert(8, "eight"));
  EXPECT_FALSE(t.insert(5, "dup"));  // duplicate rejected
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.find(5), nullptr);
  EXPECT_EQ(t.find(5)->value, "five");
  EXPECT_TRUE(t.erase(5));
  EXPECT_FALSE(t.erase(5));
  EXPECT_EQ(t.find(5), nullptr);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.validate());
}

TEST(AvlTree, LowerBoundSemantics) {
  AvlTree<int, int> t;
  for (int k : {10, 20, 30, 40}) t.insert(k, k);
  EXPECT_EQ(t.lower_bound(5)->key, 10);
  EXPECT_EQ(t.lower_bound(10)->key, 10);
  EXPECT_EQ(t.lower_bound(11)->key, 20);
  EXPECT_EQ(t.lower_bound(40)->key, 40);
  EXPECT_EQ(t.lower_bound(41), nullptr);
}

TEST(AvlTree, MinMaxAndOrderedTraversal) {
  AvlTree<int, int> t;
  for (int k : {7, 1, 9, 4, 2, 8}) t.insert(k, -k);
  EXPECT_EQ(t.min()->key, 1);
  EXPECT_EQ(t.max()->key, 9);
  std::vector<int> keys;
  t.for_each([&](int k, int) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 4, 7, 8, 9}));
}

TEST(AvlTree, AscendingInsertionStaysBalanced) {
  AvlTree<int, int> t;
  for (int i = 0; i < 4096; ++i) {
    ASSERT_TRUE(t.insert(i, i));
  }
  EXPECT_TRUE(t.validate());  // validate() checks AVL balance too
  EXPECT_EQ(t.size(), 4096u);
}

TEST(AvlTree, DescendingInsertionStaysBalanced) {
  AvlTree<int, int> t;
  for (int i = 4096; i-- > 0;) ASSERT_TRUE(t.insert(i, i));
  EXPECT_TRUE(t.validate());
}

TEST(AvlTree, MoveConstructionTransfersOwnership) {
  AvlTree<int, int> t;
  t.insert(1, 10);
  t.insert(2, 20);
  AvlTree<int, int> u(std::move(t));
  EXPECT_EQ(u.size(), 2u);
  ASSERT_NE(u.find(2), nullptr);
  EXPECT_EQ(u.find(2)->value, 20);
}

TEST(AvlTree, CompositeKeysForBestFit) {
  // The storage allocator keys free regions by (size, offset); verify that
  // lower_bound on the composite key implements best-fit with offset
  // tie-break.
  using Key = std::pair<std::size_t, std::size_t>;
  AvlTree<Key, int> t;
  t.insert({128, 0}, 0);
  t.insert({64, 512}, 1);
  t.insert({64, 128}, 2);
  t.insert({256, 1024}, 3);
  auto* n = t.lower_bound({50, 0});
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->key, (Key{64, 128}));  // smallest sufficient size, lowest offset
  n = t.lower_bound({65, 0});
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->key, (Key{128, 0}));
  n = t.lower_bound({300, 0});
  EXPECT_EQ(n, nullptr);
}

// Property test: random interleaving of inserts and erases stays
// consistent with std::map and preserves all invariants.
class AvlRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AvlRandomOps, MatchesReferenceMap) {
  Xoshiro256 rng(GetParam());
  AvlTree<std::uint64_t, std::uint64_t> t;
  std::map<std::uint64_t, std::uint64_t> ref;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.bounded(500);
    if (rng.uniform() < 0.55) {
      const bool ins = t.insert(key, step);
      EXPECT_EQ(ins, ref.emplace(key, step).second);
    } else {
      EXPECT_EQ(t.erase(key), ref.erase(key) == 1);
    }
    if (step % 1000 == 0) ASSERT_TRUE(t.validate());
  }
  ASSERT_TRUE(t.validate());
  EXPECT_EQ(t.size(), ref.size());
  auto it = ref.begin();
  t.for_each([&](std::uint64_t k, std::uint64_t v) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, ref.end());
  // lower_bound agreement on a sweep of probes.
  for (std::uint64_t probe = 0; probe < 510; probe += 7) {
    auto* n = t.lower_bound(probe);
    auto rit = ref.lower_bound(probe);
    if (rit == ref.end()) {
      EXPECT_EQ(n, nullptr);
    } else {
      ASSERT_NE(n, nullptr);
      EXPECT_EQ(n->key, rit->first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvlRandomOps,
                         ::testing::Values(1u, 2u, 3u, 42u, 0xdeadbeefu));

}  // namespace
