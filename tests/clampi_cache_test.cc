// Tests for CacheCore: get_c processing, access classification, eviction
// scoring and the weak-caching guarantees (Secs. III-B, III-D).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "clampi/cache.h"
#include "util/rng.h"

namespace {

using clampi::AccessType;
using clampi::CacheCore;
using clampi::Config;
using clampi::Key;
using clampi::kNoEntry;
using clampi::ScoreKind;

Config small_cfg() {
  Config cfg;
  cfg.index_entries = 256;
  cfg.storage_bytes = 64 * 1024;
  cfg.mode = clampi::Mode::kAlwaysCache;
  return cfg;
}

/// Simulate the window layer's flush: copy `payload` into the entry and
/// mark it cached.
void materialize(CacheCore& c, std::uint32_t entry, const void* payload, std::size_t n) {
  std::memcpy(c.entry_data(entry), payload, n);
  c.mark_cached(entry);
}

TEST(CacheCore, FirstAccessIsDirectAndPending) {
  CacheCore c(small_cfg());
  const auto r = c.access({1, 0}, 128);
  EXPECT_EQ(r.type, AccessType::kDirect);
  EXPECT_TRUE(r.inserted);
  EXPECT_NE(r.entry, kNoEntry);
  EXPECT_TRUE(c.entry_pending(r.entry));
  EXPECT_EQ(c.stats().direct, 1u);
  EXPECT_EQ(c.pending_entries(), 1u);
  EXPECT_TRUE(c.validate());
}

TEST(CacheCore, SameEpochRepeatIsPendingHit) {
  CacheCore c(small_cfg());
  const auto r1 = c.access({1, 0}, 128);
  const auto r2 = c.access({1, 0}, 128);
  EXPECT_EQ(r2.type, AccessType::kHitPending);
  EXPECT_EQ(r2.entry, r1.entry);
  EXPECT_FALSE(r2.serve_now);
  EXPECT_EQ(c.stats().hits_pending, 1u);
}

TEST(CacheCore, CachedHitServesData) {
  CacheCore c(small_cfg());
  const auto r1 = c.access({3, 64}, 16);
  std::uint8_t payload[16];
  for (int i = 0; i < 16; ++i) payload[i] = static_cast<std::uint8_t>(i * 3);
  materialize(c, r1.entry, payload, 16);

  const auto r2 = c.access({3, 64}, 16);
  EXPECT_EQ(r2.type, AccessType::kHit);
  EXPECT_TRUE(r2.serve_now);
  EXPECT_EQ(r2.cached_bytes, 16u);
  EXPECT_EQ(std::memcmp(c.entry_data(r2.entry), payload, 16), 0);
  EXPECT_EQ(c.stats().hits_full, 1u);
  EXPECT_EQ(c.stats().bytes_from_cache, 16u);
}

TEST(CacheCore, SmallerRequestIsStillFullHit) {
  // size(x) <= size(i) is a full hit (Sec. III-B1).
  CacheCore c(small_cfg());
  const auto r1 = c.access({0, 0}, 256);
  std::vector<std::uint8_t> payload(256, 0x5a);
  materialize(c, r1.entry, payload.data(), 256);
  const auto r2 = c.access({0, 0}, 100);
  EXPECT_EQ(r2.type, AccessType::kHit);
  EXPECT_EQ(r2.cached_bytes, 100u);
}

TEST(CacheCore, DifferentDisplacementIsMiss) {
  // Hits require exact displacement match — no overlap search (the paper
  // trades this for O(1) lookup).
  CacheCore c(small_cfg());
  const auto r1 = c.access({0, 0}, 256);
  materialize(c, r1.entry, std::vector<std::uint8_t>(256).data(), 256);
  EXPECT_EQ(c.access({0, 64}, 64).type, AccessType::kDirect);  // inside r1's span!
  EXPECT_EQ(c.access({1, 0}, 64).type, AccessType::kDirect);   // other target
}

TEST(CacheCore, PartialHitExtendsEntry) {
  CacheCore c(small_cfg());
  const auto r1 = c.access({2, 0}, 64);
  std::vector<std::uint8_t> head(64, 0xab);
  materialize(c, r1.entry, head.data(), 64);

  const auto r2 = c.access({2, 0}, 192);
  EXPECT_EQ(r2.type, AccessType::kPartialHit);
  EXPECT_EQ(r2.cached_bytes, 64u);
  EXPECT_TRUE(r2.serve_now);   // head was CACHED
  EXPECT_TRUE(r2.extended);
  EXPECT_EQ(c.entry_bytes(r2.entry), 192u);
  EXPECT_TRUE(c.entry_pending(r2.entry));  // tail outstanding
  // Head bytes survived the extension.
  EXPECT_EQ(std::to_integer<int>(c.entry_data(r2.entry)[63]), 0xab);
  EXPECT_EQ(c.stats().hits_partial, 1u);
  EXPECT_TRUE(c.validate());
}

TEST(CacheCore, PartialHitWithoutSpaceServesPrefixOnly) {
  Config cfg = small_cfg();
  cfg.storage_bytes = 4096;
  CacheCore c(cfg);
  const auto r1 = c.access({0, 0}, 64);
  materialize(c, r1.entry, std::vector<std::uint8_t>(64).data(), 64);
  // Fill the rest of the storage with pending entries (unevictable), so
  // the extension cannot find room.
  for (int i = 1; i < 200; ++i) {
    const auto r = c.access({0, static_cast<std::uint64_t>(i * 4096)}, 64);
    if (r.type == AccessType::kFailing) break;
  }
  const auto r2 = c.access({0, 0}, 2048);
  EXPECT_EQ(r2.type, AccessType::kPartialHit);
  EXPECT_FALSE(r2.extended);
  EXPECT_EQ(r2.cached_bytes, 64u);
  EXPECT_EQ(c.entry_bytes(r2.entry), 64u);  // unchanged
  EXPECT_TRUE(c.validate());
}

TEST(CacheCore, CapacityEvictionMakesRoom) {
  Config cfg = small_cfg();
  cfg.storage_bytes = 1024;  // 16 cache lines
  CacheCore c(cfg);
  std::vector<std::uint8_t> buf(64, 1);
  // Fill with 16 cached 64B entries.
  for (int i = 0; i < 16; ++i) {
    const auto r = c.access({0, static_cast<std::uint64_t>(i * 1000)}, 64);
    ASSERT_EQ(r.type, AccessType::kDirect) << i;
    materialize(c, r.entry, buf.data(), 64);
  }
  EXPECT_EQ(c.free_bytes(), 0u);
  const auto r = c.access({0, 999999}, 64);
  EXPECT_EQ(r.type, AccessType::kCapacity);
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_EQ(c.stats().capacity, 1u);
  EXPECT_TRUE(c.validate());
}

TEST(CacheCore, FailingWhenRequestExceedsFreeableSpace) {
  Config cfg = small_cfg();
  cfg.storage_bytes = 1024;
  CacheCore c(cfg);
  std::vector<std::uint8_t> buf(64, 1);
  for (int i = 0; i < 16; ++i) {
    const auto r = c.access({0, static_cast<std::uint64_t>(i * 1000)}, 64);
    materialize(c, r.entry, buf.data(), 64);
  }
  // A request bigger than what one eviction can free must fail (weak
  // caching: a constant number of evictions per access, Sec. III-D2).
  const auto r = c.access({0, 888888}, 512);
  EXPECT_EQ(r.type, AccessType::kFailing);
  EXPECT_EQ(r.entry, kNoEntry);
  EXPECT_GE(c.stats().failing, 1u);
  EXPECT_TRUE(c.validate());
}

TEST(CacheCore, OversizedRequestFailsButLeavesCacheIntact) {
  CacheCore c(small_cfg());
  const auto r1 = c.access({0, 0}, 64);
  materialize(c, r1.entry, std::vector<std::uint8_t>(64, 7).data(), 64);
  const auto r = c.access({0, 1}, 10 * 1024 * 1024);  // bigger than |S_w|
  EXPECT_EQ(r.type, AccessType::kFailing);
  EXPECT_EQ(c.access({0, 0}, 64).type, AccessType::kHit);
  EXPECT_TRUE(c.validate());
}

TEST(CacheCore, PendingEntriesAreNeverEvicted) {
  Config cfg = small_cfg();
  cfg.storage_bytes = 1024;
  CacheCore c(cfg);
  // Fill with PENDING entries only (no materialize).
  int inserted = 0;
  for (int i = 0; i < 16; ++i) {
    const auto r = c.access({0, static_cast<std::uint64_t>(i * 1000)}, 64);
    if (r.inserted) ++inserted;
  }
  ASSERT_GT(inserted, 0);
  EXPECT_EQ(c.pending_entries(), static_cast<std::size_t>(inserted));
  // New insert cannot evict any of them: must fail.
  const auto r = c.access({0, 777777}, 64);
  EXPECT_EQ(r.type, AccessType::kFailing);
  EXPECT_EQ(c.pending_entries(), static_cast<std::size_t>(inserted));
  EXPECT_TRUE(c.validate());
}

TEST(CacheCore, ConflictingAccessEvictsFromPath) {
  Config cfg = small_cfg();
  cfg.index_entries = 16;  // tiny index: cuckoo conflicts are inevitable
  cfg.cuckoo_arity = 2;
  cfg.max_insert_iters = 8;
  cfg.storage_bytes = 1024 * 1024;  // storage never the bottleneck
  CacheCore c(cfg);
  std::vector<std::uint8_t> buf(64, 2);
  bool saw_conflict = false;
  for (int i = 0; i < 64 && !saw_conflict; ++i) {
    const auto r = c.access({0, static_cast<std::uint64_t>(i * 64)}, 64);
    ASSERT_NE(r.type, AccessType::kCapacity);
    if (r.inserted) materialize(c, r.entry, buf.data(), 64);
    saw_conflict = r.type == AccessType::kConflicting;
  }
  EXPECT_TRUE(saw_conflict);
  EXPECT_GT(c.stats().conflicting, 0u);
  EXPECT_GT(c.stats().evictions, 0u);
  EXPECT_TRUE(c.validate());
}

TEST(CacheCore, InvalidateDropsEverything) {
  CacheCore c(small_cfg());
  const auto r1 = c.access({0, 0}, 64);
  materialize(c, r1.entry, std::vector<std::uint8_t>(64).data(), 64);
  c.invalidate();
  EXPECT_EQ(c.cached_entries(), 0u);
  EXPECT_EQ(c.free_bytes(), c.storage_bytes());
  EXPECT_EQ(c.stats().invalidations, 1u);
  EXPECT_EQ(c.access({0, 0}, 64).type, AccessType::kDirect);  // cold again
  EXPECT_TRUE(c.validate());
}

TEST(CacheCore, InvalidateWithPendingEntriesThrows) {
  CacheCore c(small_cfg());
  c.access({0, 0}, 64);  // pending
  EXPECT_THROW(c.invalidate(), clampi::util::ContractError);
}

TEST(CacheCore, ResizeCountsAsAdjustmentAndInvalidation) {
  CacheCore c(small_cfg());
  const auto r = c.access({0, 0}, 64);
  materialize(c, r.entry, std::vector<std::uint8_t>(64).data(), 64);
  c.resize(512, 128 * 1024);
  EXPECT_EQ(c.index_entries(), 512u);
  EXPECT_EQ(c.storage_bytes(), 128u * 1024u);
  EXPECT_EQ(c.stats().adjustments, 1u);
  EXPECT_EQ(c.stats().invalidations, 1u);
  EXPECT_EQ(c.cached_entries(), 0u);
  EXPECT_TRUE(c.validate());
}

TEST(CacheCore, TemporalScoreTracksRecency) {
  Config cfg = small_cfg();
  cfg.score = ScoreKind::kTemporal;
  CacheCore c(cfg);
  const auto a = c.access({0, 0}, 64);
  materialize(c, a.entry, std::vector<std::uint8_t>(64).data(), 64);
  const auto b = c.access({0, 100}, 64);
  materialize(c, b.entry, std::vector<std::uint8_t>(64).data(), 64);
  // Touch a again: its `last` becomes the most recent.
  c.access({0, 0}, 64);
  EXPECT_GT(c.score(a.entry), c.score(b.entry));
  EXPECT_LE(c.score(a.entry), 1.0);
  EXPECT_GE(c.score(b.entry), 0.0);
}

TEST(CacheCore, PositionalScorePrefersWellPlacedVictims) {
  // R_P is low when the free space adjacent to an entry is close to the
  // average get size — evicting such an entry likely frees a usable hole.
  Config cfg = small_cfg();
  cfg.score = ScoreKind::kPositional;
  cfg.storage_bytes = 64 * 8;
  CacheCore c(cfg);
  std::vector<std::uint8_t> buf(64, 1);
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 8; ++i) {
    const auto r = c.access({0, static_cast<std::uint64_t>(i * 64)}, 64);
    materialize(c, r.entry, buf.data(), 64);
    ids.push_back(r.entry);
  }
  // ags is 64B. Free the entry next to ids[3]: ids[3] then has d_c == 64
  // == ags -> positional score 0; entries far from the hole have d_c == 0
  // -> score 1.
  // (Evict via public machinery: shrink is not exposed, so emulate by a
  // capacity access that happens to pick a victim — instead, compare two
  // hand-made situations.)
  EXPECT_DOUBLE_EQ(c.score(ids[0]), 1.0);  // d_c = 0, |ags-0|/ags = 1
}

TEST(CacheCore, ScoresAreInUnitInterval) {
  CacheCore c(small_cfg());
  clampi::util::Xoshiro256 rng(4);
  std::vector<std::uint32_t> live;
  for (int i = 0; i < 300; ++i) {
    const auto r = c.access({0, rng.bounded(64) * 512}, 32 + rng.bounded(480));
    if (r.inserted) {
      std::vector<std::uint8_t> buf(c.entry_bytes(r.entry), 0);
      materialize(c, r.entry, buf.data(), buf.size());
    }
  }
  const double ags = c.average_get_size();
  EXPECT_GT(ags, 32.0);
  EXPECT_LT(ags, 512.0);
}

TEST(CacheCore, StatsDeltaArithmetic) {
  CacheCore c(small_cfg());
  const auto base = c.stats();
  c.access({0, 0}, 64);
  c.access({0, 0}, 64);
  const auto d = c.stats().delta_since(base);
  EXPECT_EQ(d.total_gets, 2u);
  EXPECT_EQ(d.direct, 1u);
  EXPECT_EQ(d.hits_pending, 1u);
}

// Oracle property test: random get streams; every byte served from the
// cache must match what a perfect mirror of the remote window holds.
class CacheOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheOracle, ServedBytesAlwaysCorrect) {
  Config cfg;
  cfg.index_entries = 128;
  cfg.storage_bytes = 16 * 1024;  // small: heavy eviction traffic
  cfg.mode = clampi::Mode::kAlwaysCache;
  CacheCore c(cfg);
  clampi::util::Xoshiro256 rng(GetParam());

  // The "remote window": deterministic bytes as a function of position.
  const auto remote_byte = [](std::uint64_t pos) {
    return static_cast<std::uint8_t>((pos * 131) ^ (pos >> 8));
  };

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t disp = rng.bounded(64) * 256;
    const std::size_t bytes = 1 + rng.bounded(1024);
    const auto r = c.access({0, disp}, bytes);
    // Check any prefix served from the cache.
    if (r.cached_bytes > 0 && r.serve_now) {
      const std::byte* data = c.entry_data(r.entry);
      for (std::size_t i = 0; i < r.cached_bytes; i += 37) {
        ASSERT_EQ(std::to_integer<std::uint8_t>(data[i]), remote_byte(disp + i))
            << "step " << step << " disp " << disp << " i " << i;
      }
    }
    // Materialize pending data like the window layer would at flush.
    if (r.entry != kNoEntry && c.entry_pending(r.entry)) {
      const std::size_t n = c.entry_bytes(r.entry);
      std::vector<std::uint8_t> payload(n);
      for (std::size_t i = 0; i < n; ++i) payload[i] = remote_byte(disp + i);
      materialize(c, r.entry, payload.data(), n);
    }
    if (step % 2000 == 0) ASSERT_TRUE(c.validate());
  }
  ASSERT_TRUE(c.validate());
  // The stream has only 64 distinct keys: hits must dominate.
  EXPECT_GT(c.stats().hit_ratio(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheOracle, ::testing::Values(1u, 2u, 77u, 4242u));

}  // namespace
