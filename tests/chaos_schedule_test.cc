// chaos::Schedule serialization and generator contracts (docs/CHAOS.md):
// the JSON round-trip must be lossless for every Step::Kind (repro
// artifacts depend on it), generate(seed) must be a pure function of the
// seed, and every generated schedule must satisfy the validity and
// oracle-soundness obligations the generator promises.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "chaos/generator.h"
#include "chaos/schedule.h"
#include "clampi/config.h"
#include "util/error.h"

namespace clampi::chaos {
namespace {

Schedule one_of_everything() {
  Schedule s;
  s.seed = 0xfeedface12345678ull;  // > 2^53: must not round through double
  s.nranks = 4;
  s.window_bytes = 8192;
  s.mode = Mode::kUserDefined;
  s.index_entries = 128;
  s.storage_bytes = 16384;
  s.adaptive = true;
  s.adapt_interval = 32;
  s.max_retries = 2;
  s.epoch_retry_budget_us = 1500.5;
  s.health_failure_threshold = 3;
  s.degraded_reads = true;
  s.degraded_max_staleness_us = 40000.0;
  s.verify_every_n = 1;
  s.scrub_entries_per_epoch = 4;
  s.shadow_verify_every_n = 1;
  s.breaker_failure_threshold = 5;
  s.plan.fail_everywhere(0.05).kill_rank(2, 9000.0).revive_rank(2, 30000.0);
  s.steps = {
      {Step::Kind::kGet, 1, 64, 256, 0.0},
      {Step::Kind::kPut, 2, 128, 32, 0.0},
      {Step::Kind::kFlushTarget, 1, 0, 0, 0.0},
      {Step::Kind::kFlushAll, 0, 0, 0, 0.0},
      {Step::Kind::kInvalidate, 0, 0, 0, 0.0},
      {Step::Kind::kCompute, 0, 0, 0, 750.25},
  };
  return s;
}

TEST(ChaosSchedule, RoundTripsEveryStepKind) {
  const Schedule s = one_of_everything();
  const Schedule t = Schedule::from_json(s.to_json());
  EXPECT_EQ(s, t);
  ASSERT_EQ(t.steps.size(), 6u);
  for (std::size_t i = 0; i < s.steps.size(); ++i) {
    EXPECT_EQ(s.steps[i], t.steps[i]) << "step " << i;
  }
}

TEST(ChaosSchedule, SecondRoundTripIsAFixpoint) {
  const std::string once = one_of_everything().to_json();
  const std::string twice = Schedule::from_json(once).to_json();
  EXPECT_EQ(once, twice);
}

TEST(ChaosSchedule, MalformedInputThrows) {
  EXPECT_THROW(Schedule::from_json("{"), util::ContractError);
  EXPECT_THROW(Schedule::from_json("nope"), util::ContractError);
}

TEST(ChaosGenerator, DeterministicInSeed) {
  for (std::uint64_t seed : {1ull, 42ull, 0xabcdef0123ull}) {
    const Schedule a = generate(seed);
    const Schedule b = generate(seed);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_EQ(a.to_json(), b.to_json()) << "seed " << seed;
  }
}

TEST(ChaosGenerator, DistinctSeedsDiverge) {
  // Not a hard guarantee for any single pair, but across 32 seeds the
  // schedules must not all collapse to a handful of shapes.
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    distinct.insert(generate(seed).to_json());
  }
  EXPECT_GT(distinct.size(), 28u);
}

TEST(ChaosGenerator, EveryScheduleIsValid) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Schedule s = generate(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));

    // The materialized Config must pass the library's own validation.
    EXPECT_NO_THROW(validate_config(s.config()));

    ASSERT_GE(s.nranks, 2);
    ASSERT_GE(s.steps.size(), 1u);
    for (const Step& st : s.steps) {
      switch (st.kind) {
        case Step::Kind::kGet:
        case Step::Kind::kPut:
          EXPECT_GE(st.target, 1);
          EXPECT_LT(st.target, s.nranks);
          EXPECT_GT(st.bytes, 0u);
          EXPECT_LE(st.disp + st.bytes, s.window_bytes);
          break;
        case Step::Kind::kFlushTarget:
          EXPECT_GE(st.target, 1);
          EXPECT_LT(st.target, s.nranks);
          break;
        case Step::Kind::kInvalidate:
          // clampi_invalidate only exists in user-defined mode.
          EXPECT_EQ(s.mode, Mode::kUserDefined);
          break;
        case Step::Kind::kFlushAll:
          break;
        case Step::Kind::kCompute:
          EXPECT_GT(st.us, 0.0);
          break;
      }
    }

    // Perturbations must target ranks inside the world.
    for (const auto& d : s.plan.degraded) {
      EXPECT_GE(d.rank, 1);
      EXPECT_LT(d.rank, s.nranks);
    }
    EXPECT_LE(s.plan.death_us.size(), static_cast<std::size_t>(s.nranks));
    EXPECT_LE(s.plan.revive_us.size(), static_cast<std::size_t>(s.nranks));
  }
}

TEST(ChaosGenerator, OracleSoundnessCouplingRules) {
  // The oracle's byte-exactness checks are only sound under coupling
  // rules the generator enforces (docs/CHAOS.md "soundness coupling").
  bool saw_stale = false, saw_bitflip = false;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    const Schedule s = generate(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));

    if (s.plan.stale_put_prob > 0.0) {
      saw_stale = true;
      // Stale puts require shadow-verify on every hit, no other failure
      // sources (a dropped flush would leave staleness unobserved), and
      // disjoint key slots so no stale prefix can be served as a partial
      // hit that shadow-verify never re-reads.
      EXPECT_EQ(s.shadow_verify_every_n, 1u);
      for (double p : s.plan.fail_prob) EXPECT_EQ(p, 0.0);
      EXPECT_TRUE(s.plan.target_fail_prob.empty());
      EXPECT_TRUE(s.plan.death_us.empty());
    }
    if (s.plan.storage_bitflip_prob > 0.0) {
      saw_bitflip = true;
      // Bit rot must be caught at serve time, every time, or a corrupt
      // hit would be reported as an oracle violation of the cache.
      EXPECT_EQ(s.verify_every_n, 1u);
    }
    // Deaths and degraded epochs only make sense on server ranks; the
    // driver (rank 0) dying would deadlock the run.
    for (std::size_t r = 0; r < s.plan.death_us.size(); ++r) {
      if (s.plan.death_us[r] >= 0.0) EXPECT_GE(r, 1u);
    }
  }
  // The 400-seed sweep must actually exercise both coupled regimes.
  EXPECT_TRUE(saw_stale);
  EXPECT_TRUE(saw_bitflip);
}

}  // namespace
}  // namespace clampi::chaos
