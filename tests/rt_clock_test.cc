// Tests for the per-rank virtual clock (time accounting is the
// measurement instrument of every benchmark, so it gets its own suite).
#include <gtest/gtest.h>

#include "rt/clock.h"
#include "util/error.h"

namespace {

using clampi::rmasim::TimePolicy;
using clampi::rmasim::VirtualClock;

TEST(VirtualClock, StartsAtZero) {
  VirtualClock c(TimePolicy::kModeled);
  EXPECT_DOUBLE_EQ(c.now_us(), 0.0);
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock c(TimePolicy::kModeled);
  c.advance_us(1.5);
  c.advance_us(2.5);
  EXPECT_DOUBLE_EQ(c.now_us(), 4.0);
}

TEST(VirtualClock, AdvanceToOnlyMovesForward) {
  VirtualClock c(TimePolicy::kModeled);
  c.advance_us(10.0);
  c.advance_to_us(5.0);  // in the past: no-op
  EXPECT_DOUBLE_EQ(c.now_us(), 10.0);
  c.advance_to_us(15.0);
  EXPECT_DOUBLE_EQ(c.now_us(), 15.0);
}

TEST(VirtualClock, ModeledEnterExitIsFree) {
  VirtualClock c(TimePolicy::kModeled);
  c.start_measurement();
  volatile double x = 1.0;
  for (int i = 0; i < 200000; ++i) x = x * 1.0000001 + 0.1;
  c.enter_runtime();
  c.exit_runtime();
  EXPECT_DOUBLE_EQ(c.now_us(), 0.0);  // burned real CPU, charged nothing
}

TEST(VirtualClock, MeasuredPolicyChargesUserTime) {
  VirtualClock c(TimePolicy::kMeasured);
  c.start_measurement();
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) x = x * 1.0000001 + 0.1;
  c.enter_runtime();  // accrues the loop above
  const double t1 = c.now_us();
  EXPECT_GT(t1, 50.0);  // a multi-million-iteration loop is >> 50us
  c.exit_runtime();
}

TEST(VirtualClock, NestedRuntimeSectionsAccrueOnce) {
  VirtualClock c(TimePolicy::kMeasured);
  c.start_measurement();
  c.enter_runtime();
  const double t0 = c.now_us();
  // Nested enter/exit (collectives call primitives): inner pairs must not
  // re-anchor or double-charge.
  c.enter_runtime();
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) x = x * 1.0000001 + 0.1;
  c.exit_runtime();
  c.exit_runtime();
  // Work inside the runtime section is never charged as user time.
  EXPECT_DOUBLE_EQ(c.now_us(), t0);
}

TEST(VirtualClock, MeasuredScaleMultiplies) {
  VirtualClock fast(TimePolicy::kMeasured, /*scale=*/1.0);
  VirtualClock slow(TimePolicy::kMeasured, /*scale=*/3.0);
  fast.start_measurement();
  slow.start_measurement();
  volatile double x = 1.0;
  for (int i = 0; i < 3000000; ++i) x = x * 1.0000001 + 0.1;
  fast.enter_runtime();
  slow.enter_runtime();
  // Same real work, 3x the scale: the ratio should be ~3 (loose bounds:
  // the two measurements bracket slightly different instants).
  EXPECT_GT(slow.now_us(), 1.5 * fast.now_us());
  fast.exit_runtime();
  slow.exit_runtime();
}

TEST(VirtualClock, NegativeAdvanceAborts) {
  VirtualClock c(TimePolicy::kModeled);
  EXPECT_DEATH(c.advance_us(-1.0), "backwards");
}

}  // namespace
