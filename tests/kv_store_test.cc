// Tests for the KV subsystem (src/kv): ring placement, bucket codec,
// collision chains, read-your-writes, cached-get byte-equality against a
// shadow map, and the generation re-read safety net (docs/KV.md).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kv/bucket.h"
#include "kv/ring.h"
#include "kv/store.h"
#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/error.h"
#include "util/rng.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;

Engine::Config engine_cfg(int nranks) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

kv::StoreConfig small_store(std::uint64_t nkeys, int nservers) {
  kv::StoreConfig cfg;
  cfg.nkeys = nkeys;
  cfg.nservers = nservers;
  cfg.cache.mode = Mode::kUserDefined;
  cfg.cache.index_entries = 4096;
  cfg.cache.storage_bytes = 4 << 20;
  return cfg;
}

// --- ring placement ---

TEST(Ring, DeterministicAcrossInstances) {
  const kv::Ring a(4, 64, 0x1234), b(4, 64, 0x1234);
  int ra[kv::kMaxReplicas], rb[kv::kMaxReplicas];
  for (std::uint64_t k = 0; k < 5000; ++k) {
    EXPECT_EQ(a.primary(k), b.primary(k));
    a.replicas(k, 3, ra);
    b.replicas(k, 3, rb);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(ra[i], rb[i]);
  }
}

TEST(Ring, ReplicasDistinctAndLedByPrimary) {
  const kv::Ring ring(5, 32, 0xbeef);
  int reps[kv::kMaxReplicas];
  for (std::uint64_t k = 0; k < 2000; ++k) {
    ring.replicas(k, 4, reps);
    EXPECT_EQ(reps[0], ring.primary(k));
    for (int i = 0; i < 4; ++i) {
      EXPECT_GE(reps[i], 0);
      EXPECT_LT(reps[i], 5);
      for (int j = i + 1; j < 4; ++j) EXPECT_NE(reps[i], reps[j]);
    }
  }
}

TEST(Ring, VnodesKeepPlacementRoughlyBalanced) {
  const int nservers = 4;
  const kv::Ring ring(nservers, 64, 0x5eed);
  std::vector<int> owned(nservers, 0);
  const int keys = 40000;
  for (std::uint64_t k = 0; k < keys; ++k) ++owned[ring.primary(util::mix64(k))];
  for (int s = 0; s < nservers; ++s) {
    // Fair share is 25%; 64 vnodes keep every server within a loose band.
    EXPECT_GT(owned[s], keys / 10) << "server " << s;
    EXPECT_LT(owned[s], keys / 2) << "server " << s;
  }
}

// --- bucket codec ---

TEST(Bucket, HeaderAndSlotRoundTrip) {
  const kv::Layout layout;
  std::vector<std::byte> raw(layout.bucket_bytes());
  kv::BucketHeader h;
  h.count = 3;
  h.chain = 17;
  h.generation = 0x1122334455667788ull;
  kv::store_header(raw.data(), h);
  const kv::BucketHeader h2 = kv::load_header(raw.data());
  EXPECT_EQ(h2.count, 3u);
  EXPECT_EQ(h2.chain, 17u);
  EXPECT_EQ(h2.generation, h.generation);

  kv::SlotMeta m;
  m.key = 0xdeadbeefcafef00dull;
  m.seq = 41;
  m.len = 33;
  kv::store_slot_meta(raw.data() + layout.slot_offset(2), m);
  const kv::SlotMeta m2 = kv::load_slot_meta(raw.data() + layout.slot_offset(2));
  EXPECT_EQ(m2.key, m.key);
  EXPECT_EQ(m2.seq, m.seq);
  EXPECT_EQ(m2.len, m.len);
}

TEST(Bucket, ValuesAreSelfDescribing) {
  std::vector<std::byte> v(64);
  kv::fill_value(/*key=*/99, /*seq=*/5, /*len=*/64, v.data());
  EXPECT_TRUE(kv::check_value(99, 5, 64, v.data()));
  EXPECT_FALSE(kv::check_value(99, 6, 64, v.data()));  // wrong seq
  EXPECT_FALSE(kv::check_value(98, 5, 64, v.data()));  // wrong key
  v[10] ^= std::byte{0x01};
  EXPECT_FALSE(kv::check_value(99, 5, 64, v.data()));  // corrupted byte
}

// --- store: lookup, chains, puts, shadow-map equality ---

TEST(KvStore, EveryKeyFoundAndSelfConsistent) {
  Engine e(engine_cfg(3));
  e.run([](Process& p) {
    kv::Store store(p, small_store(/*nkeys=*/1500, /*nservers=*/2));
    if (p.rank() == 2) {
      store.window().lock_all();
      std::vector<std::byte> value(store.config().layout.value_capacity);
      for (std::uint64_t i = 0; i < store.config().nkeys; ++i) {
        const std::uint64_t key = store.key_at(i);
        kv::GetMeta m;
        ASSERT_TRUE(store.get(key, value.data(), &m)) << "key rank " << i;
        EXPECT_EQ(m.seq, 0u);
        EXPECT_EQ(m.generation, 1u);
        EXPECT_TRUE(kv::check_value(key, m.seq, m.len, value.data()));
      }
      // A key that was never loaded is a clean miss, not an error.
      kv::GetMeta m;
      EXPECT_FALSE(store.get(0x0123456789abcdefull, value.data(), &m));
      store.window().unlock_all();
    }
    p.barrier();
    store.free_window();
  });
}

TEST(KvStore, OversubscribedLoadFactorForcesChains) {
  Engine e(engine_cfg(3));
  e.run([](Process& p) {
    kv::StoreConfig cfg = small_store(/*nkeys=*/1200, /*nservers=*/2);
    cfg.load_factor = 2.5;    // main array holds < half the keys: chains
    cfg.overflow_frac = 2.0;  // plenty of overflow buckets to chain into
    kv::Store store(p, cfg);
    if (p.rank() == 2) {
      store.window().lock_all();
      std::vector<std::byte> value(cfg.layout.value_capacity);
      std::uint64_t chain_follows = 0;
      for (std::uint64_t i = 0; i < cfg.nkeys; ++i) {
        const std::uint64_t key = store.key_at(i);
        kv::GetMeta m;
        ASSERT_TRUE(store.get(key, value.data(), &m));
        EXPECT_TRUE(kv::check_value(key, m.seq, m.len, value.data()));
        chain_follows += static_cast<std::uint64_t>(m.chain_follows);
      }
      EXPECT_GT(chain_follows, 0u);
      EXPECT_EQ(store.window().stats().kv_chain_reads, chain_follows);
      store.window().unlock_all();
    }
    p.barrier();
    store.free_window();
  });
}

TEST(KvStore, GetAfterPutAndShadowMapByteEquality) {
  Engine e(engine_cfg(3));
  e.run([](Process& p) {
    kv::Store store(p, small_store(/*nkeys=*/800, /*nservers=*/2));
    if (p.rank() == 2) {
      store.window().lock_all();
      const std::uint32_t cap = store.config().layout.value_capacity;
      std::vector<std::byte> value(cap), buf(cap);
      // Shadow of every byte this client has observed or written; the
      // store must agree with it on every subsequent cached get.
      std::unordered_map<std::uint64_t, std::vector<std::byte>> shadow;
      std::unordered_map<std::uint64_t, std::uint32_t> seq;
      util::Xoshiro256 rng(77);
      for (int op = 0; op < 3000; ++op) {
        const std::uint64_t key = store.key_at(rng.bounded(store.config().nkeys));
        if (rng.uniform() < 0.3) {
          const std::uint32_t s = ++seq[key];
          const std::uint32_t len =
              1 + static_cast<std::uint32_t>(rng.bounded(cap));
          kv::fill_value(key, s, len, buf.data());
          ASSERT_TRUE(store.put(key, s, buf.data(), len));
          shadow[key].assign(buf.data(), buf.data() + len);
          // Read-your-writes: the put's overlap invalidation must make
          // the very next cached get observe the new bytes.
          kv::GetMeta m;
          ASSERT_TRUE(store.get(key, value.data(), &m));
          EXPECT_EQ(m.seq, s);
          ASSERT_EQ(m.len, len);
          EXPECT_EQ(std::memcmp(value.data(), buf.data(), len), 0);
        } else {
          kv::GetMeta m;
          ASSERT_TRUE(store.get(key, value.data(), &m));
          EXPECT_TRUE(kv::check_value(key, m.seq, m.len, value.data()));
          auto it = shadow.find(key);
          if (it == shadow.end()) {
            shadow[key].assign(value.data(), value.data() + m.len);
          } else {
            ASSERT_EQ(m.len, it->second.size());
            EXPECT_EQ(std::memcmp(value.data(), it->second.data(), m.len), 0);
          }
        }
      }
      EXPECT_GT(store.window().stats().hitting(), 0u);
      EXPECT_GT(store.window().stats().put_invalidation_ops, 0u);
      store.window().unlock_all();
    }
    p.barrier();
    store.free_window();
  });
}

TEST(KvStore, ReloadInvalidatesAndRestampsGeneration) {
  Engine e(engine_cfg(3));
  e.run([](Process& p) {
    kv::Store store(p, small_store(/*nkeys=*/600, /*nservers=*/2));
    std::vector<std::byte> value(store.config().layout.value_capacity);
    if (p.rank() == 2) {
      store.window().lock_all();
      for (std::uint64_t i = 0; i < 200; ++i) {
        kv::GetMeta m;
        ASSERT_TRUE(store.get(store.key_at(i), value.data(), &m));
        EXPECT_EQ(m.seq, 0u);
      }
      store.window().unlock_all();
    }
    p.barrier();
    store.reload(/*generation=*/2);
    if (p.rank() == 2) {
      store.window().lock_all();
      for (std::uint64_t i = 0; i < 200; ++i) {
        const std::uint64_t key = store.key_at(i);
        kv::GetMeta m;
        ASSERT_TRUE(store.get(key, value.data(), &m));
        EXPECT_EQ(m.seq, 1u);  // reload stamps seq = generation - 1
        EXPECT_EQ(m.generation, 2u);
        EXPECT_FALSE(m.version_reread);  // cache was invalidated: clean refill
        EXPECT_TRUE(kv::check_value(key, m.seq, m.len, value.data()));
      }
      store.window().unlock_all();
    }
    p.barrier();
    store.free_window();
  });
}

TEST(KvStore, StaleGenerationTriggersVersionedReread) {
  Engine e(engine_cfg(3));
  e.run([](Process& p) {
    kv::Store store(p, small_store(/*nkeys=*/600, /*nservers=*/2));
    std::vector<std::byte> value(store.config().layout.value_capacity);
    if (p.rank() == 2) {  // warm the cache against generation 1
      store.window().lock_all();
      for (std::uint64_t i = 0; i < 200; ++i) {
        kv::GetMeta m;
        ASSERT_TRUE(store.get(store.key_at(i), value.data(), &m));
      }
      store.window().unlock_all();
    }
    p.barrier();
    // The client "forgets" Listing 1's invalidation: its cached buckets
    // now carry generation 1 while the shards serve generation 2.
    store.reload(/*generation=*/2, /*invalidate_caches=*/false);
    if (p.rank() == 2) {
      store.window().lock_all();
      std::uint64_t rereads = 0;
      for (std::uint64_t i = 0; i < 200; ++i) {
        const std::uint64_t key = store.key_at(i);
        kv::GetMeta m;
        ASSERT_TRUE(store.get(key, value.data(), &m));
        // The safety net must still deliver generation-2 data.
        EXPECT_EQ(m.seq, 1u);
        EXPECT_EQ(m.generation, 2u);
        EXPECT_TRUE(kv::check_value(key, m.seq, m.len, value.data()));
        if (m.version_reread) ++rereads;
      }
      EXPECT_GT(rereads, 0u);
      EXPECT_EQ(store.window().stats().kv_version_rereads, rereads);
      store.window().unlock_all();
    }
    p.barrier();
    store.free_window();
  });
}

TEST(KvStore, RejectsInvalidConfigs) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    kv::StoreConfig cfg = small_store(100, 1);
    cfg.cache.mode = Mode::kTransparent;  // KV owns epoch invalidation
    EXPECT_THROW(kv::Store store(p, cfg), util::ContractError);
    p.barrier();
  });
}

}  // namespace
