// Statistical property tests for the LibLSB-style summary: the 95% CI of
// the median must actually cover the true median at roughly the nominal
// rate, across distribution shapes — the benchmarks' stopping rule
// depends on it.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "metrics/stats.h"
#include "util/rng.h"

namespace {

using clampi::metrics::summarize;
using clampi::util::Xoshiro256;

/// Fraction of resampled experiments whose CI covers `true_median`.
template <class Gen>
double coverage(Gen&& gen, double true_median, int experiments, int samples_each) {
  int covered = 0;
  for (int e = 0; e < experiments; ++e) {
    std::vector<double> s;
    s.reserve(samples_each);
    for (int i = 0; i < samples_each; ++i) s.push_back(gen());
    const auto sum = summarize(std::move(s));
    covered += sum.ci_lo <= true_median && true_median <= sum.ci_hi;
  }
  return static_cast<double>(covered) / experiments;
}

TEST(CiCoverage, UniformDistribution) {
  Xoshiro256 rng(1);
  const double cov =
      coverage([&] { return rng.uniform(); }, 0.5, /*experiments=*/400, /*samples=*/51);
  EXPECT_GT(cov, 0.90);  // nominal 95%, order statistics are conservative
}

TEST(CiCoverage, ExponentialDistribution) {
  // Latency-like skew: the median CI must still cover.
  Xoshiro256 rng(2);
  const double true_median = std::log(2.0);
  const double cov = coverage([&] { return -std::log(1.0 - rng.uniform()); },
                              true_median, 400, 51);
  EXPECT_GT(cov, 0.90);
}

TEST(CiCoverage, BimodalDistribution) {
  // Cache-like bimodality (hit ~0.3, miss ~2.5 with 30% misses): median
  // is in the hit mode.
  Xoshiro256 rng(3);
  const auto gen = [&] {
    return rng.uniform() < 0.7 ? 0.3 + 0.01 * rng.uniform() : 2.5 + 0.1 * rng.uniform();
  };
  // Median of the mixture: F(x) = 0.7 * (x - 0.3)/0.01 on the hit mode,
  // so the 50th percentile sits at 0.3 + 0.01 * (0.5 / 0.7).
  const double true_median = 0.3 + 0.01 * (0.5 / 0.7);
  const double cov = coverage(gen, true_median, 400, 51);
  EXPECT_GT(cov, 0.90);
}

TEST(CiCoverage, SmallSamples) {
  Xoshiro256 rng(4);
  const double cov = coverage([&] { return rng.uniform(); }, 0.5, 400, 11);
  EXPECT_GT(cov, 0.85);  // approximation degrades but must stay sane
}

TEST(CiWidth, ShrinksAsSqrtN) {
  Xoshiro256 rng(5);
  const auto width_at = [&](int n) {
    double acc = 0.0;
    for (int e = 0; e < 50; ++e) {
      std::vector<double> s;
      for (int i = 0; i < n; ++i) s.push_back(rng.uniform());
      const auto sum = summarize(std::move(s));
      acc += sum.ci_hi - sum.ci_lo;
    }
    return acc / 50.0;
  };
  const double w100 = width_at(100);
  const double w1600 = width_at(1600);
  // 16x the samples => ~4x narrower CI.
  EXPECT_NEAR(w100 / w1600, 4.0, 1.6);
}

}  // namespace
