// Tests for the LogGP network cost model: the latency hierarchy must
// reproduce the structure of Fig. 1 of the paper.
#include <gtest/gtest.h>

#include "netmodel/hierarchy.h"
#include "netmodel/model.h"

namespace {

using namespace clampi::net;

TEST(FlatModel, LinearInBytes) {
  FlatModel m(2.0, 0.001);
  EXPECT_DOUBLE_EQ(m.transfer_us(0, 1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.transfer_us(0, 1, 1000), 3.0);
  EXPECT_DOUBLE_EQ(m.transfer_us(5, 9, 1000), 3.0);  // distance-agnostic
}

TEST(Topology, DistanceClassification) {
  Topology t{.ranks_per_node = 2, .nodes_per_group = 4};
  EXPECT_EQ(t.distance(3, 3), Distance::kSelf);
  EXPECT_EQ(t.distance(0, 1), Distance::kSameNode);   // node 0
  EXPECT_EQ(t.distance(0, 2), Distance::kSameGroup);  // nodes 0 and 1
  EXPECT_EQ(t.distance(0, 7), Distance::kSameGroup);  // node 3, group 0
  EXPECT_EQ(t.distance(0, 8), Distance::kRemoteGroup);  // node 4, group 1
}

TEST(Topology, OneRankPerNodeDefault) {
  Topology t{};  // 1 rank/node, 96 nodes/group (Cray XC)
  EXPECT_EQ(t.distance(0, 1), Distance::kSameGroup);
  EXPECT_EQ(t.distance(0, 95), Distance::kSameGroup);
  EXPECT_EQ(t.distance(0, 96), Distance::kRemoteGroup);
}

TEST(HierarchicalModel, LatencySpreadMatchesFig1) {
  // Fig. 1: small-message latencies span local DRAM (<0.1us) to remote
  // group (~2-3us).
  auto cfg = aries_like(/*ranks_per_node=*/4);
  HierarchicalModel m(cfg);
  const double self = m.transfer_us(0, 0, 8);
  const double node = m.transfer_us(0, 1, 8);
  const double group = m.transfer_us(0, 4, 8);
  const double remote = m.transfer_us(0, 4 * 96, 8);
  EXPECT_LT(self, 0.2);
  EXPECT_GT(node, self);
  EXPECT_GT(group, node);
  EXPECT_GT(remote, group);
  EXPECT_GT(remote, 2.0);
  EXPECT_LT(remote, 3.5);
}

TEST(HierarchicalModel, BandwidthBoundForLargeMessages) {
  HierarchicalModel m(aries_like(1));
  // 1 MiB at ~10 GB/s => on the order of 100 us.
  const double t = m.transfer_us(0, 1, 1 << 20);
  EXPECT_GT(t, 50.0);
  EXPECT_LT(t, 250.0);
}

TEST(HierarchicalModel, MonotoneInSize) {
  HierarchicalModel m(aries_like(1));
  double prev = 0.0;
  for (std::size_t b = 1; b <= (1u << 20); b <<= 1) {
    const double t = m.transfer_us(0, 1, b);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(HierarchicalModel, BarrierGrowsLogarithmically) {
  HierarchicalModel m(aries_like(1));
  EXPECT_DOUBLE_EQ(m.barrier_us(1), 0.0);
  const double b2 = m.barrier_us(2);
  const double b16 = m.barrier_us(16);
  const double b128 = m.barrier_us(128);
  EXPECT_GT(b2, 0.0);
  EXPECT_NEAR(b16 / b2, 4.0, 1e-9);   // log2(16)/log2(2)
  EXPECT_NEAR(b128 / b2, 7.0, 1e-9);  // log2(128)/log2(2)
}

TEST(HierarchicalModel, LocalCopyCheaperThanRemoteGetForCacheableSizes) {
  // The premise of the paper: a local copy beats a remote get by a wide
  // margin for the sizes CLaMPI caches (up to 64 KiB in the evaluation).
  HierarchicalModel m(aries_like(1));
  for (std::size_t b = 1; b <= (64u << 10); b <<= 1) {
    EXPECT_LT(m.local_copy_us(b) * 2.0, m.transfer_us(0, 1, b)) << "size " << b;
  }
}

TEST(HierarchicalModel, IssueOverheadSmallVersusLatency) {
  HierarchicalModel m(aries_like(1));
  EXPECT_LT(m.issue_us(0, 1, 8), 0.5 * m.transfer_us(0, 1, 8));
}

}  // namespace
