// Tests for the distributed PageRank application and the info-key
// configuration / bypass-get extensions.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "clampi/clampi.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "graph/pagerank.h"
#include "graph/rmat.h"
#include "netmodel/model.h"
#include "rt/engine.h"

namespace {

using namespace clampi;
using graph::Csr;
using graph::DistributedPagerank;
using graph::pagerank_reference;
using graph::PagerankConfig;
using graph::PrBackend;
using rmasim::Engine;
using rmasim::Process;

Engine::Config ecfg(int nranks) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

TEST(PagerankReference, UniformOnRegularGraph) {
  // A cycle: every vertex has degree 2; PageRank must stay uniform.
  std::vector<std::pair<graph::Vertex, graph::Vertex>> edges;
  for (graph::Vertex v = 0; v < 10; ++v) edges.emplace_back(v, (v + 1) % 10);
  const Csr g = graph::build_csr(10, std::move(edges));
  const auto pr = pagerank_reference(g, 0.85, 20);
  for (const double s : pr) EXPECT_NEAR(s, 0.1, 1e-12);
}

TEST(PagerankReference, MassConservation) {
  const Csr g = graph::rmat_graph({.scale = 10, .edge_factor = 8, .seed = 3});
  const auto pr = pagerank_reference(g, 0.85, 15);
  // With symmetric adjacency there are no dangling vertices of degree > 0;
  // isolated vertices only receive the teleport mass. Total mass stays
  // within [1-d, 1].
  const double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_GT(sum, 0.15);
  EXPECT_LE(sum, 1.0 + 1e-9);
}

TEST(PagerankReference, HubsScoreHigher) {
  // Star graph: the center must far outrank the leaves.
  std::vector<std::pair<graph::Vertex, graph::Vertex>> edges;
  for (graph::Vertex v = 1; v < 16; ++v) edges.emplace_back(0, v);
  const Csr g = graph::build_csr(16, std::move(edges));
  const auto pr = pagerank_reference(g, 0.85, 30);
  for (std::size_t v = 1; v < 16; ++v) EXPECT_GT(pr[0], 5.0 * pr[v]);
}

class PagerankDistributed : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(PagerankDistributed, MatchesSerialReference) {
  const int nranks = std::get<0>(GetParam());
  const bool use_clampi = std::get<1>(GetParam());
  auto g = std::make_shared<Csr>(graph::rmat_graph({.scale = 9, .edge_factor = 8, .seed = 4}));
  const auto want = pagerank_reference(*g, 0.85, 8);

  Engine e(ecfg(nranks));
  auto got = std::make_shared<std::vector<double>>(g->num_vertices(), -1.0);
  e.run([&](Process& p) {
    PagerankConfig cfg;
    cfg.iterations = 8;
    cfg.backend = use_clampi ? PrBackend::kClampi : PrBackend::kNone;
    cfg.clampi_cfg.index_entries = 4096;
    cfg.clampi_cfg.storage_bytes = 1 << 20;
    DistributedPagerank solver(p, g, cfg);
    solver.run();
    for (graph::Vertex v = solver.first_vertex(); v < solver.last_vertex(); ++v) {
      (*got)[v] = solver.local_scores()[v - solver.first_vertex()];
    }
    p.barrier();
  });
  for (std::size_t v = 0; v < want.size(); ++v) {
    ASSERT_NEAR((*got)[v], want[v], 1e-12) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, PagerankDistributed,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Bool()));

TEST(PagerankDistributed, CachesWithinIterationInvalidatesBetween) {
  auto g = std::make_shared<Csr>(graph::rmat_graph({.scale = 10, .edge_factor = 16, .seed = 6}));
  Engine e(ecfg(4));
  e.run([&](Process& p) {
    PagerankConfig cfg;
    cfg.iterations = 5;
    cfg.backend = PrBackend::kClampi;
    cfg.clampi_cfg.index_entries = 1 << 14;
    cfg.clampi_cfg.storage_bytes = 4 << 20;
    DistributedPagerank solver(p, g, cfg);
    const auto rep = solver.run();
    const auto* st = solver.clampi_stats();
    ASSERT_NE(st, nullptr);
    EXPECT_GT(rep.remote_gets, 0u);
    // One invalidation per iteration (the write phase).
    EXPECT_EQ(st->invalidations, 5u);
    // Hub scores are fetched once per appearance in an owned adjacency
    // list: plenty of reuse inside each iteration.
    EXPECT_GT(st->hit_ratio(), 0.3);
    p.barrier();
  });
}

TEST(PagerankDistributed, SkipDeadRanksDropsDeadOwnersGets) {
  // Rank 3 is dead from the start; with skip_dead_ranks the solver
  // consults target_status() and drops fetches against it (the dead
  // rank's mass leaks out of the ranking) instead of aborting.
  auto g = std::make_shared<Csr>(graph::rmat_graph({.scale = 9, .edge_factor = 8, .seed = 4}));
  fault::Plan plan;
  plan.kill_rank(3, 0.0);
  Engine::Config ec = ecfg(4);
  ec.injector = std::make_shared<fault::Injector>(plan);
  Engine e(ec);
  auto dropped = std::make_shared<std::vector<std::uint64_t>>(4, 0);
  e.run([&](Process& p) {
    PagerankConfig cfg;
    cfg.iterations = 4;
    cfg.backend = PrBackend::kClampi;
    cfg.clampi_cfg.index_entries = 4096;
    cfg.clampi_cfg.storage_bytes = 1 << 20;
    cfg.skip_dead_ranks = true;
    DistributedPagerank solver(p, g, cfg);
    const auto rep = solver.run();
    (*dropped)[static_cast<std::size_t>(p.rank())] = rep.dropped_gets;
    // Scores stay sane: finite, non-negative, no more than total mass.
    for (graph::Vertex v = solver.first_vertex(); v < solver.last_vertex(); ++v) {
      const double s = solver.local_scores()[v - solver.first_vertex()];
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
    p.barrier();
  });
  // Alive ranks with neighbours owned by rank 3 must have dropped gets.
  EXPECT_GT((*dropped)[0] + (*dropped)[1] + (*dropped)[2], 0u);
}

// --- info-key configuration ---

TEST(Info, ParseSizeSuffixes) {
  EXPECT_EQ(parse_size("123"), 123u);
  EXPECT_EQ(parse_size("4K"), 4096u);
  EXPECT_EQ(parse_size("4k"), 4096u);
  EXPECT_EQ(parse_size("2M"), std::size_t{2} << 20);
  EXPECT_EQ(parse_size("1G"), std::size_t{1} << 30);
  EXPECT_THROW(parse_size(""), util::ContractError);
  EXPECT_THROW(parse_size("12X"), util::ContractError);
  EXPECT_THROW(parse_size("12Mx"), util::ContractError);
}

TEST(Info, FullConfiguration) {
  const Config cfg = config_from_info({
      {"clampi_mode", "always_cache"},
      {"clampi_index_entries", "2048"},
      {"clampi_storage_bytes", "16M"},
      {"clampi_adaptive", "true"},
      {"clampi_score", "temporal"},
      {"clampi_sample_size", "32"},
      {"clampi_arity", "3"},
      {"clampi_conflict_threshold", "0.07"},
      {"clampi_adapt_interval", "512"},
      {"clampi_seed", "99"},
  });
  EXPECT_EQ(cfg.mode, Mode::kAlwaysCache);
  EXPECT_EQ(cfg.index_entries, 2048u);
  EXPECT_EQ(cfg.storage_bytes, std::size_t{16} << 20);
  EXPECT_TRUE(cfg.adaptive);
  EXPECT_EQ(cfg.score, ScoreKind::kTemporal);
  EXPECT_EQ(cfg.sample_size, 32);
  EXPECT_EQ(cfg.cuckoo_arity, 3);
  EXPECT_DOUBLE_EQ(cfg.conflict_threshold, 0.07);
  EXPECT_EQ(cfg.adapt_interval, 512u);
  EXPECT_EQ(cfg.seed, 99u);
}

TEST(Info, ForeignKeysIgnoredUnknownClampiKeysRejected) {
  EXPECT_NO_THROW(config_from_info({{"mpi_assert_no_locks", "true"}}));
  EXPECT_THROW(config_from_info({{"clampi_typo", "1"}}), util::ContractError);
  EXPECT_THROW(config_from_info({{"clampi_mode", "bogus"}}), util::ContractError);
  EXPECT_THROW(config_from_info({{"clampi_adaptive", "maybe"}}), util::ContractError);
}

TEST(Info, WindowConstructionFromInfo) {
  Engine e(ecfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    const rmasim::Window w = p.win_allocate(1024, &base);
    CachedWindow win(p, w,
                     Info{{"clampi_mode", "always_cache"},
                          {"clampi_index_entries", "128"},
                          {"clampi_storage_bytes", "64K"}});
    EXPECT_EQ(win.mode(), Mode::kAlwaysCache);
    EXPECT_EQ(win.index_entries(), 128u);
    EXPECT_EQ(win.storage_bytes(), std::size_t{64} << 10);
    p.barrier();
    p.win_free(w);
  });
}

// --- per-operation bypass ---

TEST(Bypass, GetNocacheNeverPopulatesTheCache) {
  Engine e(ecfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    auto win = CachedWindow::allocate(p, 1024, &base, cfg);
    auto* b = static_cast<std::uint8_t*>(base);
    for (int i = 0; i < 1024; ++i) b[i] = static_cast<std::uint8_t>(i + p.rank());
    p.barrier();
    win.lock_all();
    std::uint8_t buf[64];
    win.get_nocache(buf, 64, 1 - p.rank(), 0);
    win.flush_all();
    EXPECT_EQ(buf[5], static_cast<std::uint8_t>(5 + (1 - p.rank())));
    EXPECT_EQ(win.stats().total_gets, 0u);  // cache untouched
    EXPECT_EQ(win.bypassed_gets(), 1u);
    // A cached get of the same key is a miss: nothing was inserted.
    win.get(buf, 64, 1 - p.rank(), 0);
    EXPECT_EQ(win.last_access(), AccessType::kDirect);
    win.flush_all();
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

}  // namespace
