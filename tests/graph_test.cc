// Tests for the graph substrate: R-MAT generation, CSR construction and
// the distributed LCC against the serial reference.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "fault/injector.h"
#include "fault/plan.h"
#include "graph/lcc.h"
#include "graph/rmat.h"
#include "netmodel/model.h"
#include "rt/engine.h"

namespace {

using namespace clampi;
using graph::build_csr;
using graph::Csr;
using graph::DistributedLcc;
using graph::intersect_count;
using graph::lcc_reference;
using graph::LccBackend;
using graph::LccConfig;
using graph::rmat_graph;
using graph::RmatParams;
using graph::Vertex;
using rmasim::Engine;
using rmasim::Process;

Engine::Config engine_cfg(int nranks) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

TEST(Csr, BuildDedupsAndSymmetrizes) {
  // Edges: 0-1 (x2, both directions), 1-2, self-loop 2-2.
  const Csr g = build_csr(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}, {2, 2}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_undirected_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
  EXPECT_EQ(g.neighbors(1)[1], 2u);
}

TEST(Csr, AdjacencyListsAreSorted) {
  const Csr g = rmat_graph({.scale = 10, .edge_factor = 8, .seed = 5});
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (std::uint64_t k = 1; k < g.degree(v); ++k) {
      ASSERT_LT(g.neighbors(v)[k - 1], g.neighbors(v)[k]);
    }
  }
}

TEST(Csr, SymmetryHolds) {
  const Csr g = rmat_graph({.scale = 9, .edge_factor = 6, .seed = 6});
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (std::uint64_t k = 0; k < g.degree(v); ++k) {
      const Vertex u = g.neighbors(v)[k];
      ASSERT_EQ(intersect_count(&v, 1, g.neighbors(u), g.degree(u)), 1u)
          << "edge (" << v << "," << u << ") not symmetric";
    }
  }
}

TEST(Rmat, DeterministicForSeed) {
  const auto e1 = graph::rmat_edges({.scale = 8, .edge_factor = 4, .seed = 9});
  const auto e2 = graph::rmat_edges({.scale = 8, .edge_factor = 4, .seed = 9});
  EXPECT_EQ(e1, e2);
  const auto e3 = graph::rmat_edges({.scale = 8, .edge_factor = 4, .seed = 10});
  EXPECT_NE(e1, e3);
}

TEST(Rmat, SkewedDegreeDistribution) {
  // R-MAT with a=0.57 produces scale-free-ish graphs: the max degree must
  // far exceed the average.
  const Csr g = rmat_graph({.scale = 12, .edge_factor = 16, .seed = 11});
  std::uint64_t maxdeg = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) maxdeg = std::max(maxdeg, g.degree(v));
  const double avg = static_cast<double>(g.adj.size()) / g.num_vertices();
  EXPECT_GT(static_cast<double>(maxdeg), 8.0 * avg);
}

TEST(Rmat, EdgeCountInExpectedRange) {
  const RmatParams p{.scale = 10, .edge_factor = 16, .seed = 3};
  const Csr g = rmat_graph(p);
  const auto requested = (std::size_t{1} << p.scale) * 16;
  EXPECT_LE(g.num_undirected_edges(), requested);
  EXPECT_GT(g.num_undirected_edges(), requested / 4);  // dedup removes some
}

TEST(Intersect, SortedIntersection) {
  const Vertex a[] = {1, 3, 5, 7, 9};
  const Vertex b[] = {2, 3, 4, 7, 8, 9};
  EXPECT_EQ(intersect_count(a, 5, b, 6), 3u);
  EXPECT_EQ(intersect_count(a, 0, b, 6), 0u);
  EXPECT_EQ(intersect_count(a, 5, a, 5), 5u);
}

TEST(LccReference, TriangleAndPath) {
  // Triangle 0-1-2 plus pendant 3 attached to 2.
  const Csr g = build_csr(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto lcc = lcc_reference(g);
  EXPECT_DOUBLE_EQ(lcc[0], 1.0);
  EXPECT_DOUBLE_EQ(lcc[1], 1.0);
  EXPECT_DOUBLE_EQ(lcc[2], 1.0 / 3.0);  // one of three possible edges
  EXPECT_DOUBLE_EQ(lcc[3], 0.0);        // degree 1
}

TEST(LccReference, CompleteGraphIsAllOnes) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex u = 0; u < 6; ++u) {
    for (Vertex v = u + 1; v < 6; ++v) edges.emplace_back(u, v);
  }
  const auto lcc = lcc_reference(build_csr(6, std::move(edges)));
  for (const double c : lcc) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(LccReference, StarHasZeroCenter) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex v = 1; v < 8; ++v) edges.emplace_back(0, v);
  const auto lcc = lcc_reference(build_csr(8, std::move(edges)));
  EXPECT_DOUBLE_EQ(lcc[0], 0.0);
}

class LccDistributed : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(LccDistributed, MatchesSerialReference) {
  const int nranks = std::get<0>(GetParam());
  const bool use_clampi = std::get<1>(GetParam());
  auto g = std::make_shared<Csr>(rmat_graph({.scale = 9, .edge_factor = 8, .seed = 21}));
  const auto want = lcc_reference(*g);

  Engine e(engine_cfg(nranks));
  auto results = std::make_shared<std::vector<double>>(g->num_vertices(), -1.0);
  e.run([&](Process& p) {
    LccConfig cfg;
    cfg.backend = use_clampi ? LccBackend::kClampi : LccBackend::kNone;
    cfg.clampi_cfg.mode = Mode::kAlwaysCache;
    cfg.clampi_cfg.index_entries = 4096;
    cfg.clampi_cfg.storage_bytes = 4 << 20;
    DistributedLcc solver(p, g, cfg);
    solver.run();
    const auto& local = solver.local_lcc();
    for (std::size_t i = 0; i < local.size(); ++i) {
      (*results)[solver.first_vertex() + i] = local[i];
    }
    p.barrier();
  });
  for (std::size_t v = 0; v < want.size(); ++v) {
    ASSERT_NEAR((*results)[v], want[v], 1e-12) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, LccDistributed,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Bool()));

TEST(LccDistributed, CachingProducesHitsOnSharedNeighbours) {
  auto g = std::make_shared<Csr>(rmat_graph({.scale = 10, .edge_factor = 16, .seed = 31}));
  Engine e(engine_cfg(4));
  e.run([&](Process& p) {
    LccConfig cfg;
    cfg.backend = LccBackend::kClampi;
    cfg.clampi_cfg.mode = Mode::kAlwaysCache;
    cfg.clampi_cfg.index_entries = 1 << 15;
    cfg.clampi_cfg.storage_bytes = 16 << 20;
    DistributedLcc solver(p, g, cfg);
    const auto rep = solver.run();
    const auto* st = solver.clampi_stats();
    ASSERT_NE(st, nullptr);
    EXPECT_GT(rep.remote_gets, 0u);
    // Hub vertices appear in many adjacency lists: hits must be plentiful.
    EXPECT_GT(st->hit_ratio(), 0.4);
    p.barrier();
  });
}

TEST(LccDistributed, SkipDeadRanksDropsDeadOwnersAdjacency) {
  // Rank 2 is dead from the start; with skip_dead_ranks triangles that
  // need its adjacency lists are skipped (their wedges go uncounted)
  // instead of aborting the whole computation.
  auto g = std::make_shared<Csr>(rmat_graph({.scale = 9, .edge_factor = 8, .seed = 21}));
  fault::Plan plan;
  plan.kill_rank(2, 0.0);
  Engine::Config ec = engine_cfg(4);
  ec.injector = std::make_shared<fault::Injector>(plan);
  Engine e(ec);
  auto dropped = std::make_shared<std::vector<std::uint64_t>>(4, 0);
  e.run([&](Process& p) {
    LccConfig cfg;
    cfg.backend = LccBackend::kClampi;
    cfg.clampi_cfg.mode = Mode::kAlwaysCache;
    cfg.clampi_cfg.index_entries = 4096;
    cfg.clampi_cfg.storage_bytes = 4 << 20;
    cfg.skip_dead_ranks = true;
    DistributedLcc solver(p, g, cfg);
    const auto rep = solver.run();
    (*dropped)[static_cast<std::size_t>(p.rank())] = rep.dropped_gets;
    // Coefficients stay well-formed under partial information.
    for (const double c : solver.local_lcc()) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
    }
    p.barrier();
  });
  EXPECT_GT((*dropped)[0] + (*dropped)[1] + (*dropped)[3], 0u);
}

TEST(LccDistributed, SizeHistogramTracksDegrees) {
  auto g = std::make_shared<Csr>(rmat_graph({.scale = 9, .edge_factor = 8, .seed = 41}));
  Engine e(engine_cfg(4));
  e.run([&](Process& p) {
    LccConfig cfg;
    cfg.backend = LccBackend::kNone;
    cfg.track_size_histogram = true;
    DistributedLcc solver(p, g, cfg);
    const auto rep = solver.run();
    std::uint64_t histo_total = 0;
    for (const auto& [sz, cnt] : solver.size_histogram()) {
      EXPECT_EQ(sz % sizeof(Vertex), 0u);
      histo_total += cnt;
    }
    EXPECT_EQ(histo_total, rep.remote_gets);
    p.barrier();
  });
}

TEST(LccDistributed, OwnershipPartitionsCoverAllVertices) {
  auto g = std::make_shared<Csr>(rmat_graph({.scale = 8, .edge_factor = 4, .seed = 51}));
  Engine e(engine_cfg(5));
  auto covered = std::make_shared<std::vector<int>>(g->num_vertices(), 0);
  e.run([&](Process& p) {
    LccConfig cfg;
    DistributedLcc solver(p, g, cfg);
    for (Vertex v = solver.first_vertex(); v < solver.last_vertex(); ++v) {
      EXPECT_EQ(solver.owner_of(v), p.rank());
      (*covered)[v] += 1;
    }
    p.barrier();
  });
  for (const int c : *covered) EXPECT_EQ(c, 1);
}

}  // namespace
