// Tests for the hot-path mechanics introduced by the cache-core
// overhaul: the deterministic kick-target rotation, the 8-bit slot-word
// fingerprint, and the hot-path counters surfaced through clampi::Stats
// and stats_to_info().
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "clampi/cache.h"
#include "clampi/cuckoo_index.h"
#include "clampi/info.h"
#include "util/rng.h"

namespace {

using clampi::CacheCore;
using clampi::Config;
using clampi::CuckooIndex;
using clampi::Key;
using clampi::kNoEntry;
namespace util = clampi::util;

struct TestOps {
  std::vector<std::uint64_t> keys;
  std::uint64_t hash_key(std::uint32_t id) const { return keys[id]; }
};

using Index = CuckooIndex<TestOps>;

// --- kick-target rotation ---------------------------------------------------

// The walk must never bounce an occupant straight back into the slot it
// was just displaced from (Fotakis et al.: re-insert into one of the p-1
// *other* candidates). Exhaustive over all candidate assignments from a
// small slot universe, all from_slots, and a full rotation period.
TEST(KickRotation, ExhaustivelyExcludesFromSlot) {
  for (int arity = 2; arity <= Index::kMaxArity; ++arity) {
    const std::size_t universe = 3;  // slots {0,1,2}: plenty of collisions
    std::size_t assignments = 1;
    for (int i = 0; i < arity; ++i) assignments *= universe;
    for (std::size_t a = 0; a < assignments; ++a) {
      std::size_t cand[Index::kMaxArity];
      std::size_t code = a;
      for (int i = 0; i < arity; ++i) {
        cand[i] = code % universe;
        code /= universe;
      }
      for (std::size_t from = 0; from < universe; ++from) {
        bool escapable = false;
        for (int i = 0; i < arity; ++i) escapable |= cand[i] != from;
        for (std::uint32_t rot = 0; rot < 2u * static_cast<std::uint32_t>(arity); ++rot) {
          const int pick = Index::pick_kick_index(cand, arity, from, rot);
          ASSERT_GE(pick, 0);
          ASSERT_LT(pick, arity);
          if (escapable) {
            ASSERT_NE(cand[pick], from)
                << "arity=" << arity << " assignment=" << a << " from=" << from
                << " rot=" << rot;
          } else {
            // Degenerate: every candidate IS from_slot; the fallback must
            // still return the rotation start, not read out of bounds.
            ASSERT_EQ(pick, static_cast<int>(rot % static_cast<std::uint32_t>(arity)));
          }
        }
      }
    }
  }
}

// Consecutive rotations must cycle through different escape targets when
// several exist — a stuck rotation would degenerate the walk into a
// two-slot ping-pong.
TEST(KickRotation, RotationVariesTheTarget) {
  const std::size_t cand[4] = {10, 20, 30, 40};
  bool seen[4] = {false, false, false, false};
  for (std::uint32_t rot = 0; rot < 4; ++rot) {
    seen[Index::pick_kick_index(cand, 4, /*from_slot=*/20, rot)] = true;
  }
  EXPECT_TRUE(seen[0]);
  EXPECT_FALSE(seen[1]);  // candidate 1 IS from_slot: never picked
  EXPECT_TRUE(seen[2]);
  EXPECT_TRUE(seen[3]);
}

// Randomized stress: the exclusion holds for arbitrary candidate sets,
// and a live index at high load stays valid while inserts that kick keep
// succeeding (the rotation makes forward progress).
TEST(KickRotation, StressHighLoadInsertsStayValid) {
  TestOps ops;
  Index idx(256, 4, 64, 7, &ops);
  util::Xoshiro256 rng(99);
  std::size_t placed = 0;
  while (placed < 240) {  // ~94% load: deep walks guaranteed
    const std::uint64_t k = rng();
    ops.keys.push_back(k);
    if (idx.insert(k, static_cast<std::uint32_t>(ops.keys.size() - 1), nullptr)) ++placed;
  }
  EXPECT_TRUE(idx.validate());
  EXPECT_GT(idx.counters().kick_steps, 0u);
  // Every placed key must still resolve (walks displaced many of them).
  for (std::uint32_t id = 0; id < ops.keys.size(); ++id) {
    const std::uint64_t k = ops.keys[id];
    const std::uint32_t got =
        idx.lookup(k, [&](std::uint32_t e) { return ops.keys[e] == k; });
    if (got != kNoEntry) EXPECT_EQ(ops.keys[got], k);
  }
}

// --- fingerprint filtering --------------------------------------------------

TEST(Fingerprint, TagNeverEqualsEmptySentinel) {
  // The empty slot word carries 0xff in the tag byte; tag_of must never
  // produce it, or an empty slot could tag-match and feed pred() a
  // garbage id. Scan a large deterministic key sample.
  std::uint64_t k = 0x243f6a8885a308d3ull;
  for (int i = 0; i < 1 << 20; ++i) {
    ASSERT_NE(Index::tag_of(k), 0xffu);
    k += 0x9e3779b97f4a7c15ull;
  }
}

// Force fingerprint collisions: probe a loaded table with absent keys
// until one tag-matches a resident entry with a different exact key. The
// lookup must report a miss, count the false positive, and never corrupt
// or mis-resolve resident keys.
TEST(Fingerprint, CollisionIsCountedAndRejected) {
  TestOps ops;
  Index idx(64, 4, 64, 42, &ops);
  util::Xoshiro256 rng(5);
  while (idx.occupied() < 48) {
    const std::uint64_t k = rng();
    ops.keys.push_back(k);
    idx.insert(k, static_cast<std::uint32_t>(ops.keys.size() - 1), nullptr);
  }
  const std::uint64_t fp_before = idx.counters().tag_false_positives;
  // 48 occupied slots x 8-bit tags: a few thousand absent probes are
  // certain (deterministically, fixed seed) to hit several collisions.
  std::uint64_t probe = 0xfeedface;
  int misses = 0;
  for (int i = 0; i < 4096; ++i) {
    probe += 0x9e3779b97f4a7c15ull;
    const std::uint32_t got =
        idx.lookup(probe, [&](std::uint32_t e) { return ops.keys[e] == probe; });
    EXPECT_EQ(got, kNoEntry);  // keys are absent: any return would be wrong
    ++misses;
  }
  EXPECT_EQ(misses, 4096);
  EXPECT_GT(idx.counters().tag_false_positives, fp_before)
      << "no tag collision in 4096 absent probes of a 75%-full table";
  // False positives must not have disturbed resident entries.
  EXPECT_TRUE(idx.validate());
  for (std::uint32_t id = 0; id < ops.keys.size(); ++id) {
    const std::uint64_t k = ops.keys[id];
    const std::uint32_t got = idx.lookup(k, [&](std::uint32_t e) { return ops.keys[e] == k; });
    if (got != kNoEntry) EXPECT_EQ(ops.keys[got], k);
  }
}

// probes_out: 1 for a first-slot hit is the minimum; a miss examines all
// p candidates. The caller-visible contract CacheCore::access() sums.
TEST(Fingerprint, ProbeOutParameterBounds) {
  TestOps ops;
  Index idx(64, 4, 64, 42, &ops);
  ops.keys.push_back(123);
  ASSERT_TRUE(idx.insert(123, 0, nullptr));
  int probes = -1;
  const std::uint32_t got =
      idx.lookup(123, [&](std::uint32_t e) { return ops.keys[e] == 123u; }, &probes);
  EXPECT_EQ(got, 0u);
  EXPECT_GE(probes, 1);
  EXPECT_LE(probes, idx.arity());
  probes = -1;
  idx.lookup(456, [&](std::uint32_t e) { return ops.keys[e] == 456u; }, &probes);
  EXPECT_EQ(probes, idx.arity());  // miss: every candidate examined
}

// --- hot-path counters through Stats / stats_to_info ------------------------

TEST(HotPathCounters, SurfacedThroughStatsAndInfo) {
  Config cfg;
  cfg.index_entries = 64;
  cfg.storage_bytes = std::size_t{64} << 10;
  CacheCore c(cfg);
  // Drive misses + hits: distinct keys force inserts (fast-bin allocs,
  // walks once the index loads up), repeats drive lookup probes.
  for (std::uint64_t round = 0; round < 4; ++round) {
    for (std::uint64_t i = 0; i < 96; ++i) {
      const auto r = c.access(Key{1, i * 4096}, 256);
      if (r.inserted) c.mark_cached(r.entry);
    }
  }
  const clampi::Stats& s = c.stats();
  EXPECT_GT(s.index_probes, 0u);
  EXPECT_GE(s.index_probes, s.total_gets);  // every get probes at least once
  EXPECT_GT(s.storage_fastbin_allocs, 0u);  // 256-byte entries are bin-sized
  EXPECT_GT(s.storage_pool_reuses, 0u);     // eviction churn recycles descriptors
  EXPECT_GT(s.index_kick_steps, 0u);        // 96 keys into 64 slots must walk

  const clampi::Info info = clampi::stats_to_info(s);
  const auto field = [&info](const char* name) {
    const auto it = info.find(std::string("clampi_stat_") + name);
    return it == info.end() ? std::string("<missing>") : it->second;
  };
  EXPECT_EQ(field("index_probes"), std::to_string(s.index_probes));
  EXPECT_EQ(field("index_tag_false_positives"), std::to_string(s.index_tag_false_positives));
  EXPECT_EQ(field("index_kick_steps"), std::to_string(s.index_kick_steps));
  EXPECT_EQ(field("storage_fastbin_allocs"), std::to_string(s.storage_fastbin_allocs));
  EXPECT_EQ(field("storage_tree_allocs"), std::to_string(s.storage_tree_allocs));
  EXPECT_EQ(field("storage_pool_reuses"), std::to_string(s.storage_pool_reuses));
}

// resize() replaces the index object; the counters it accumulated must
// be banked, not lost — the adaptive tuner reads deltas across resizes.
TEST(HotPathCounters, SurviveResize) {
  Config cfg;
  cfg.index_entries = 64;
  cfg.storage_bytes = std::size_t{64} << 10;
  CacheCore c(cfg);
  for (std::uint64_t i = 0; i < 96; ++i) {
    const auto r = c.access(Key{1, i * 4096}, 256);
    if (r.inserted) c.mark_cached(r.entry);
  }
  const clampi::Stats before = c.stats();
  ASSERT_GT(before.index_kick_steps, 0u);
  c.resize(128, std::size_t{128} << 10);
  const clampi::Stats& after = c.stats();
  EXPECT_GE(after.index_probes, before.index_probes);
  EXPECT_GE(after.index_kick_steps, before.index_kick_steps);
  EXPECT_GE(after.index_tag_false_positives, before.index_tag_false_positives);
  EXPECT_GE(after.storage_fastbin_allocs, before.storage_fastbin_allocs);
  EXPECT_GE(after.storage_pool_reuses, before.storage_pool_reuses);
}

}  // namespace
