// Per-target health subsystem (docs/FAULTS.md §6): failure-detector state
// machine, per-target retry budgets (no cross-target starvation),
// quarantine fast-fails, bounded-staleness degraded reads, dead-flush
// in-flight handling and the typed target-status query API.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clampi/clampi.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "netmodel/model.h"
#include "rt/engine.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;

Engine::Config ecfg(int nranks, std::shared_ptr<fault::Injector> inj = nullptr) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(10.0, 0.0);  // 10us per transfer
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  cfg.injector = std::move(inj);
  return cfg;
}

Config cache_cfg(Mode mode) {
  Config cfg;
  cfg.mode = mode;
  cfg.index_entries = 512;
  cfg.storage_bytes = 256 * 1024;
  return cfg;
}

void fill_pattern(void* base, std::size_t n, int rank) {
  auto* b = static_cast<std::uint8_t*>(base);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 7 + rank * 13) & 0xff);
  }
}

std::uint8_t pattern_at(std::size_t i, int rank) {
  return static_cast<std::uint8_t>((i * 7 + rank * 13) & 0xff);
}

// ---------------------------------------------------------------------------
// HealthMonitor unit behaviour (no engine)
// ---------------------------------------------------------------------------

HealthMonitor::Config mon_cfg() {
  HealthMonitor::Config c;
  c.failure_threshold = 3;
  c.window_us = 10000.0;
  c.ewma_alpha = 0.5;
  c.ewma_halflife_us = 1000.0;
  c.suspect_threshold = 0.5;
  c.quarantine_dwell_us = 1000.0;
  c.probe_successes = 2;
  return c;
}

TEST(HealthMonitor, DisabledDetectorStaysHealthyButAccountsBackoff) {
  HealthMonitor::Config c = mon_cfg();
  c.failure_threshold = 0;  // detector off
  HealthMonitor m(c);
  EXPECT_FALSE(m.enabled());
  for (int i = 0; i < 20; ++i) m.record_failure(0, 100.0 * i, /*fatal=*/true);
  EXPECT_EQ(m.state(0), HealthState::kHealthy);
  EXPECT_DOUBLE_EQ(m.suspicion(0, 5000.0), 0.0);
  // The per-target backoff pools must work unconditionally.
  m.epoch_backoff_us(0) += 25.0;
  m.epoch_backoff_us(2) += 5.0;
  EXPECT_DOUBLE_EQ(m.epoch_backoff_us(0), 25.0);
  EXPECT_DOUBLE_EQ(m.epoch_backoff_us(1), 0.0);
  EXPECT_DOUBLE_EQ(m.total_epoch_backoff_us(), 30.0);
  m.on_epoch_close(1000.0, nullptr);
  EXPECT_DOUBLE_EQ(m.total_epoch_backoff_us(), 0.0);
}

TEST(HealthMonitor, WindowedFailuresQuarantine) {
  HealthMonitor m(mon_cfg());
  EXPECT_EQ(m.record_failure(1, 10.0, false), HealthState::kSuspect);  // s = 0.5
  EXPECT_EQ(m.record_failure(1, 20.0, false), HealthState::kSuspect);
  // Third windowed failure reaches the threshold.
  EXPECT_EQ(m.record_failure(1, 30.0, false), HealthState::kQuarantined);
  const TargetStatus st = m.status(1, 30.0);
  EXPECT_EQ(st.state, HealthState::kQuarantined);
  EXPECT_EQ(st.failures, 3u);
  EXPECT_DOUBLE_EQ(st.quarantined_since_us, 30.0);
  EXPECT_FALSE(st.usable);
  // Other targets are untouched.
  EXPECT_EQ(m.state(0), HealthState::kHealthy);
  EXPECT_TRUE(m.status(0, 30.0).usable);
}

TEST(HealthMonitor, FatalFailureQuarantinesImmediately) {
  HealthMonitor m(mon_cfg());
  EXPECT_EQ(m.record_failure(4, 100.0, /*fatal=*/true), HealthState::kQuarantined);
  EXPECT_EQ(m.status(4, 100.0).failures, 1u);
}

TEST(HealthMonitor, SuspicionDecaysWithVirtualTime) {
  HealthMonitor m(mon_cfg());
  m.record_failure(0, 0.0, false);  // suspicion = alpha = 0.5
  EXPECT_DOUBLE_EQ(m.suspicion(0, 0.0), 0.5);
  // One half-life later the estimate halves without any new outcome.
  EXPECT_NEAR(m.suspicion(0, 1000.0), 0.25, 1e-12);
  EXPECT_NEAR(m.suspicion(0, 2000.0), 0.125, 1e-12);
  // A success after the decay drops the target back below the suspect
  // threshold and recovers the state.
  EXPECT_EQ(m.state(0), HealthState::kSuspect);
  EXPECT_EQ(m.record_success(0, 2000.0), HealthState::kHealthy);
}

TEST(HealthMonitor, EpochClosePromotesAfterDwell) {
  HealthMonitor m(mon_cfg());
  m.record_failure(2, 500.0, /*fatal=*/true);
  m.epoch_backoff_us(2) += 40.0;

  std::vector<std::pair<int, HealthState>> out;
  m.on_epoch_close(1000.0, &out);  // dwell (1000us) not yet elapsed
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(m.state(2), HealthState::kQuarantined);
  EXPECT_DOUBLE_EQ(m.epoch_backoff_us(2), 0.0);  // backoff resets regardless

  m.on_epoch_close(1600.0, &out);  // 1100us in quarantine: promote
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 2);
  EXPECT_EQ(out[0].second, HealthState::kProbing);
  EXPECT_EQ(m.state(2), HealthState::kProbing);
}

TEST(HealthMonitor, ProbeStreakRecloses) {
  HealthMonitor m(mon_cfg());
  m.record_failure(0, 0.0, /*fatal=*/true);
  m.on_epoch_close(2000.0, nullptr);
  ASSERT_EQ(m.state(0), HealthState::kProbing);
  EXPECT_EQ(m.record_success(0, 2100.0), HealthState::kProbing);  // streak 1 of 2
  EXPECT_EQ(m.record_success(0, 2200.0), HealthState::kHealthy);
  const TargetStatus st = m.status(0, 2200.0);
  EXPECT_DOUBLE_EQ(st.suspicion, 0.0);
  EXPECT_LT(st.quarantined_since_us, 0.0);
  EXPECT_EQ(st.failures, 1u);  // cumulative counters survive recovery
  EXPECT_EQ(st.successes, 2u);
}

TEST(HealthMonitor, ProbeFailureRequarantines) {
  HealthMonitor m(mon_cfg());
  m.record_failure(0, 0.0, /*fatal=*/true);
  m.on_epoch_close(2000.0, nullptr);
  ASSERT_EQ(m.state(0), HealthState::kProbing);
  EXPECT_EQ(m.record_failure(0, 2100.0, false), HealthState::kQuarantined);
  EXPECT_DOUBLE_EQ(m.status(0, 2100.0).quarantined_since_us, 2100.0);
}

TEST(HealthMonitor, StateNames) {
  EXPECT_STREQ(to_string(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(to_string(HealthState::kSuspect), "suspect");
  EXPECT_STREQ(to_string(HealthState::kQuarantined), "quarantined");
  EXPECT_STREQ(to_string(HealthState::kProbing), "probing");
}

// ---------------------------------------------------------------------------
// Window integration
// ---------------------------------------------------------------------------

TEST(HealthWindow, RetryBudgetIsPerTarget) {
  // Both targets always fail. With the pre-health *global* budget, target
  // 1's retries would exhaust the pool and target 2 would give up with
  // zero retries; per-target pools give each its own three.
  fault::Plan plan;
  plan.fail_target(1, 1.0).fail_target(2, 1.0);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);
  ccfg.max_retries = 100;
  ccfg.retry_backoff_us = 10.0;
  ccfg.retry_backoff_factor = 1.0;
  ccfg.retry_jitter = 0.0;
  ccfg.epoch_retry_budget_us = 35.0;  // room for 3 x 10us per target

  Engine e(ecfg(3, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64);
      EXPECT_THROW(win.get(buf.data(), 64, 1, 0), fault::OpFailedError);
      EXPECT_THROW(win.get(buf.data(), 64, 2, 0), fault::OpFailedError);
      const Stats st = win.stats();
      EXPECT_EQ(st.retries, 6u);        // 3 per target, not 3 total
      EXPECT_EQ(st.retry_giveups, 2u);  // each target exhausts its own pool
      EXPECT_EQ(st.injected_faults, 8u);
      EXPECT_DOUBLE_EQ(win.epoch_backoff_us(1), 30.0);
      EXPECT_DOUBLE_EQ(win.epoch_backoff_us(2), 30.0);
      EXPECT_DOUBLE_EQ(win.epoch_backoff_us(), 60.0);  // summed accessor
      win.flush_all();  // epoch boundary resets every pool
      EXPECT_DOUBLE_EQ(win.epoch_backoff_us(), 0.0);
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(HealthWindow, QuarantineFastFailsWithoutBurningRetries) {
  fault::Plan plan;
  plan.fail_target(1, 1.0);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);  // max_retries = 0
  ccfg.health_failure_threshold = 2;
  ccfg.health_window_us = 1e6;
  ccfg.health_suspect_threshold = 0.9;
  ccfg.health_quarantine_dwell_us = 1e9;  // never re-probed in this test

  Engine e(ecfg(3, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64);
      EXPECT_THROW(win.get(buf.data(), 64, 1, 0), fault::OpFailedError);
      EXPECT_EQ(win.target_health(1), HealthState::kHealthy);
      EXPECT_THROW(win.get(buf.data(), 64, 1, 64), fault::OpFailedError);
      EXPECT_EQ(win.target_health(1), HealthState::kQuarantined);
      EXPECT_EQ(win.stats().health_quarantines, 1u);
      EXPECT_EQ(win.stats().injected_faults, 2u);

      // The third get fast-fails: no network op, no injected fault.
      bool quarantined = false;
      try {
        win.get(buf.data(), 64, 1, 128);
      } catch (const fault::OpFailedError& err) {
        quarantined = err.failure() == fault::FailureKind::kQuarantined;
      }
      EXPECT_TRUE(quarantined);
      EXPECT_EQ(win.stats().fast_fails, 1u);
      EXPECT_EQ(win.stats().injected_faults, 2u);  // unchanged

      // A healthy target is untouched by target 1's quarantine.
      win.get(buf.data(), 64, 2, 0);
      win.flush_all();
      for (int j = 0; j < 64; ++j) {
        ASSERT_EQ(buf[static_cast<std::size_t>(j)],
                  pattern_at(static_cast<std::size_t>(j), 2));
      }

      const TargetStatus bad = win.target_status(1);
      EXPECT_EQ(bad.state, HealthState::kQuarantined);
      EXPECT_EQ(bad.failures, 2u);
      EXPECT_EQ(bad.fast_fails, 1u);
      EXPECT_FALSE(bad.usable);
      EXPECT_FALSE(bad.dead);  // unreachable by policy, not by the injector
      const TargetStatus good = win.target_status(2);
      EXPECT_TRUE(good.usable);
      EXPECT_GE(good.successes, 1u);
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(HealthWindow, DegradedReadsServeDeadTargetInTransparentMode) {
  // The headline behaviour: unlike cache_fallback (read-only modes only),
  // bounded-staleness degraded reads work in kTransparent. The dead
  // flush materializes in-flight data as last-known-good entries and the
  // transparent invalidation retains them for the down target.
  fault::Plan plan;
  plan.kill_rank(1, 1000.0);

  Config ccfg = cache_cfg(Mode::kTransparent);
  ccfg.degraded_reads = true;
  ccfg.degraded_max_staleness_us = 1e6;

  Engine e(ecfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64);
      std::vector<std::uint8_t> buf2(64);
      win.get(buf.data(), 64, 1, 0);    // issued while rank 1 is alive
      win.get(buf2.data(), 64, 1, 64);  // (data movement is eager)
      p.compute_us(2000.0);             // rank 1 dies with the epoch open
      EXPECT_THROW(win.flush_all(), fault::OpFailedError);
      // Both entries were materialized and retained across the epoch.
      EXPECT_EQ(win.core().pending_entries(), 0u);
      EXPECT_EQ(win.core().cached_entries(), 2u);

      // Cached keys keep serving, with correct bytes and bounded age.
      win.get(buf.data(), 64, 1, 0);
      EXPECT_TRUE(win.last_was_degraded());
      EXPECT_GT(win.last_degraded_age_us(), 0.0);
      EXPECT_LE(win.last_degraded_age_us(), 1e6);
      for (int j = 0; j < 64; ++j) {
        ASSERT_EQ(buf[static_cast<std::size_t>(j)],
                  pattern_at(static_cast<std::size_t>(j), 1));
      }
      win.get(buf2.data(), 64, 1, 64);
      for (int j = 0; j < 64; ++j) {
        ASSERT_EQ(buf2[static_cast<std::size_t>(j)],
                  pattern_at(64 + static_cast<std::size_t>(j), 1));
      }
      EXPECT_EQ(win.stats().degraded_hits, 2u);
      EXPECT_EQ(win.stats().fallback_hits, 0u);

      // A key that was never cached must surface the death.
      EXPECT_THROW(win.get(buf.data(), 64, 1, 2048), fault::OpFailedError);
      EXPECT_FALSE(win.last_was_degraded());
      EXPECT_TRUE(win.core().validate());
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(HealthWindow, DegradedReadsRespectStalenessBound) {
  fault::Plan plan;
  plan.kill_rank(1, 1000.0);

  Config ccfg = cache_cfg(Mode::kTransparent);
  ccfg.degraded_reads = true;
  ccfg.degraded_max_staleness_us = 50000.0;

  Engine e(ecfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64);
      win.get(buf.data(), 64, 1, 0);
      p.compute_us(2000.0);
      EXPECT_THROW(win.flush_all(), fault::OpFailedError);

      win.get(buf.data(), 64, 1, 0);  // well inside the bound
      EXPECT_TRUE(win.last_was_degraded());
      EXPECT_EQ(win.stats().degraded_hits, 1u);

      // Outlive the bound: the survivor is dropped, the get surfaces the
      // rank death instead of silently serving over-stale bytes — and the
      // ordinary hit path cannot resurrect the entry either.
      p.compute_us(100000.0);
      EXPECT_THROW(win.get(buf.data(), 64, 1, 0), fault::OpFailedError);
      EXPECT_FALSE(win.last_was_degraded());
      EXPECT_EQ(win.stats().degraded_hits, 1u);
      EXPECT_EQ(win.stats().degraded_expired, 1u);
      EXPECT_TRUE(win.core().validate());
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(HealthWindow, DegradedReadsCountSeparatelyInAlwaysCacheMode) {
  fault::Plan plan;
  plan.kill_rank(1, 1000.0);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);
  ccfg.degraded_reads = true;
  ccfg.degraded_max_staleness_us = 1e6;  // cache_fallback stays false

  Engine e(ecfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64);
      win.get(buf.data(), 64, 1, 0);
      win.flush_all();
      p.compute_us(2000.0);
      win.get(buf.data(), 64, 1, 0);
      for (int j = 0; j < 64; ++j) {
        ASSERT_EQ(buf[static_cast<std::size_t>(j)],
                  pattern_at(static_cast<std::size_t>(j), 1));
      }
      EXPECT_EQ(win.stats().degraded_hits, 1u);
      EXPECT_EQ(win.stats().fallback_hits, 0u);
      EXPECT_THROW(win.get(buf.data(), 64, 1, 2048), fault::OpFailedError);
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(HealthWindow, SurvivorDroppedWhenTargetRevives) {
  // fault::Plan::revive_rank brings the rank back: retained last-known-good
  // entries must not be served as ordinary transparent-mode hits once the
  // target is reachable again — they are dropped and re-fetched fresh.
  fault::Plan plan;
  plan.kill_rank(1, 1000.0).revive_rank(1, 3000.0);

  Config ccfg = cache_cfg(Mode::kTransparent);
  ccfg.degraded_reads = true;
  ccfg.degraded_max_staleness_us = 1e7;

  Engine e(ecfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64);
      win.get(buf.data(), 64, 1, 0);
      p.compute_us(2000.0);
      EXPECT_THROW(win.flush_all(), fault::OpFailedError);
      win.get(buf.data(), 64, 1, 0);
      EXPECT_TRUE(win.last_was_degraded());

      p.compute_us(2000.0);  // past the revival instant
      win.get(buf.data(), 64, 1, 0);  // fresh fetch from the revived rank
      EXPECT_FALSE(win.last_was_degraded());
      EXPECT_EQ(win.stats().degraded_expired, 1u);
      win.flush_all();
      for (int j = 0; j < 64; ++j) {
        ASSERT_EQ(buf[static_cast<std::size_t>(j)],
                  pattern_at(static_cast<std::size_t>(j), 1));
      }
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(HealthWindow, ReviveRankReclosesThroughProbing) {
  // QUARANTINED -> PROBING (dwell elapsed, epoch boundary) -> HEALTHY
  // (probe successes), exercised end-to-end against a revived rank.
  fault::Plan plan;
  plan.kill_rank(1, 1000.0).revive_rank(1, 3000.0);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);
  ccfg.health_failure_threshold = 1;
  ccfg.health_quarantine_dwell_us = 1500.0;
  ccfg.health_probe_successes = 2;

  Engine e(ecfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64);
      p.compute_us(2000.0);  // rank 1 is dead
      EXPECT_THROW(win.get(buf.data(), 64, 1, 0), fault::OpFailedError);
      EXPECT_EQ(win.target_health(1), HealthState::kQuarantined);
      EXPECT_THROW(win.get(buf.data(), 64, 1, 0), fault::OpFailedError);  // fast-fail
      EXPECT_EQ(win.stats().fast_fails, 1u);

      win.flush_all();  // epoch boundary before the dwell elapsed: no probe
      EXPECT_EQ(win.target_health(1), HealthState::kQuarantined);

      p.compute_us(2500.0);  // past dwell (3500 < 4500) and revival (3000)
      win.flush_all();       // epoch boundary: half-open
      EXPECT_EQ(win.target_health(1), HealthState::kProbing);
      EXPECT_EQ(win.stats().health_probes, 1u);

      win.get(buf.data(), 64, 1, 0);  // first successful probe
      EXPECT_EQ(win.target_health(1), HealthState::kProbing);
      win.get(buf.data(), 64, 1, 64);  // second: reclose
      EXPECT_EQ(win.target_health(1), HealthState::kHealthy);
      EXPECT_EQ(win.stats().health_recoveries, 1u);
      win.flush_all();
      for (int j = 0; j < 64; ++j) {
        ASSERT_EQ(buf[static_cast<std::size_t>(j)],
                  pattern_at(64 + static_cast<std::size_t>(j), 1));
      }
      EXPECT_TRUE(win.target_status(1).usable);
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(HealthWindow, PerTargetFlushDiscardsOnlyDeadTargetsInflight) {
  // flush(target) raising kRankDead mid-epoch: the dead target's pending
  // copy-ins and PENDING entries are discarded, the healthy target's
  // in-flight data survives and completes on its own flush.
  fault::Plan plan;
  plan.kill_rank(1, 50.0);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);

  Engine e(ecfg(3, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf1(64);
      std::vector<std::uint8_t> buf2(64);
      win.get(buf1.data(), 64, 1, 0);  // issued while rank 1 is alive
      win.get(buf2.data(), 64, 2, 0);
      EXPECT_EQ(win.core().pending_entries(), 2u);
      p.compute_us(100.0);  // rank 1 dies with both gets in flight
      EXPECT_THROW(win.flush(1), fault::OpFailedError);
      EXPECT_EQ(win.core().pending_entries(), 1u);  // only rank 2's remains
      EXPECT_TRUE(win.core().validate());
      win.flush(1);  // pending state was consumed: a repeat flush is clean
      win.flush(2);
      EXPECT_EQ(win.core().pending_entries(), 0u);
      for (int j = 0; j < 64; ++j) {
        ASSERT_EQ(buf2[static_cast<std::size_t>(j)],
                  pattern_at(static_cast<std::size_t>(j), 2));
      }
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(HealthWindow, TraceRecordsHealthTransitions) {
  fault::Plan plan;
  plan.fail_target(1, 1.0);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);
  ccfg.health_failure_threshold = 2;
  ccfg.health_window_us = 1e6;
  ccfg.health_suspect_threshold = 0.9;
  ccfg.health_quarantine_dwell_us = 1e9;

  Engine e(ecfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      trace::Trace t;
      win.record_faults_to(&t);
      std::vector<std::uint8_t> buf(64);
      EXPECT_THROW(win.get(buf.data(), 64, 1, 0), fault::OpFailedError);
      EXPECT_THROW(win.get(buf.data(), 64, 1, 64), fault::OpFailedError);
      win.record_faults_to(nullptr);

      std::size_t health_events = 0;
      for (const auto& ev : t.events) {
        if (ev.kind != trace::Event::Kind::kHealth) continue;
        ++health_events;
        EXPECT_EQ(ev.target, 1);
        EXPECT_EQ(ev.disp,
                  static_cast<std::uint64_t>(HealthState::kQuarantined));
      }
      EXPECT_EQ(health_events, 1u);
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(HealthWindow, TargetStatusReportsInjectorDeathWithoutDetector) {
  fault::Plan plan;
  plan.kill_rank(1, 1000.0);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);  // detector off

  Engine e(ecfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      EXPECT_TRUE(win.target_status(1).usable);
      p.compute_us(2000.0);
      const TargetStatus st = win.target_status(1);
      EXPECT_TRUE(st.dead);
      EXPECT_FALSE(st.usable);
      EXPECT_EQ(st.state, HealthState::kHealthy);  // detector is off
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

}  // namespace
