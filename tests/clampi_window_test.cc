// Integration tests: CachedWindow over the rmasim runtime — epoch
// semantics, the three operational modes, pending copy machinery,
// datatype'd gets and adaptive resizing (Secs. II, III-A, III-B).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "clampi/clampi.h"
#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/align.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;

Engine::Config engine_cfg(int nranks, double alpha = 2.0, double beta = 0.001) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(alpha, beta);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

Config cache_cfg(Mode mode) {
  Config cfg;
  cfg.mode = mode;
  cfg.index_entries = 512;
  cfg.storage_bytes = 256 * 1024;
  return cfg;
}

/// Fill a window's local memory with a deterministic per-rank pattern.
void fill_pattern(void* base, std::size_t n, int rank) {
  auto* b = static_cast<std::uint8_t*>(base);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 7 + rank * 13) & 0xff);
  }
}

std::uint8_t pattern_at(std::size_t i, int rank) {
  return static_cast<std::uint8_t>((i * 7 + rank * 13) & 0xff);
}

TEST(CachedWindow, MissThenHitReturnsIdenticalBytes) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, cache_cfg(Mode::kAlwaysCache));
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    win.lock_all();
    const int peer = 1 - p.rank();
    std::vector<std::uint8_t> a(256), b(256);
    win.get(a.data(), 256, peer, 128);
    EXPECT_EQ(win.last_access(), AccessType::kDirect);
    win.flush_all();
    win.get(b.data(), 256, peer, 128);
    EXPECT_EQ(win.last_access(), AccessType::kHit);
    for (int i = 0; i < 256; ++i) {
      ASSERT_EQ(a[i], pattern_at(128 + i, peer));
      ASSERT_EQ(b[i], a[i]);
    }
    EXPECT_EQ(win.stats().hits_full, 1u);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, HitsAvoidTheNetwork) {
  // After warming the cache, repeated gets must not advance the modelled
  // network time (alpha is huge to make any network use obvious).
  Engine e(engine_cfg(2, /*alpha=*/1000.0, /*beta=*/0.0));
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 1024, &base, cache_cfg(Mode::kAlwaysCache));
    p.barrier();
    win.lock_all();
    std::vector<std::uint8_t> buf(64);
    win.get(buf.data(), 64, 1 - p.rank(), 0);
    win.flush_all();
    const double warm = p.now_us();
    for (int i = 0; i < 100; ++i) {
      win.get(buf.data(), 64, 1 - p.rank(), 0);
      win.flush_all();
    }
    // 100 cached epochs must cost less than a single remote get.
    EXPECT_LT(p.now_us() - warm, 1000.0);
    EXPECT_EQ(win.stats().hits_full, 100u);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, PendingHitSameEpoch) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 1024, &base, cache_cfg(Mode::kAlwaysCache));
    fill_pattern(base, 1024, p.rank());
    p.barrier();
    win.lock_all();
    const int peer = 1 - p.rank();
    std::vector<std::uint8_t> a(100, 0), b(100, 0);
    win.get(a.data(), 100, peer, 40);  // miss: pending insert
    win.get(b.data(), 100, peer, 40);  // same epoch: pending hit
    EXPECT_EQ(win.last_access(), AccessType::kHitPending);
    // b is not filled yet: the copy-out happens at flush.
    win.flush_all();
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(a[i], pattern_at(40 + i, peer));
      ASSERT_EQ(b[i], a[i]);
    }
    EXPECT_EQ(win.stats().hits_pending, 1u);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, PartialHitFetchesOnlyTail) {
  Engine e(engine_cfg(2, /*alpha=*/10.0, /*beta=*/1.0));  // 1us per byte
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, cache_cfg(Mode::kAlwaysCache));
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    win.lock_all();
    const int peer = 1 - p.rank();
    std::vector<std::uint8_t> a(64), b(256);
    win.get(a.data(), 64, peer, 0);
    win.flush_all();
    const double t0 = p.now_us();
    win.get(b.data(), 256, peer, 0);
    EXPECT_EQ(win.last_access(), AccessType::kPartialHit);
    win.flush_all();
    const double dt = p.now_us() - t0;
    // Tail = 192 bytes -> ~10+192us; a full fetch would be ~10+256us.
    EXPECT_LT(dt, 230.0);
    for (int i = 0; i < 256; ++i) ASSERT_EQ(b[i], pattern_at(i, peer));
    // The extended entry now serves the full 256 bytes locally.
    std::vector<std::uint8_t> c(256);
    win.get(c.data(), 256, peer, 0);
    EXPECT_EQ(win.last_access(), AccessType::kHit);
    for (int i = 0; i < 256; ++i) ASSERT_EQ(c[i], b[i]);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, TransparentModeInvalidatesEachEpoch) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 1024, &base, cache_cfg(Mode::kTransparent));
    fill_pattern(base, 1024, p.rank());
    p.barrier();
    win.lock_all();
    std::vector<std::uint8_t> buf(64);
    win.get(buf.data(), 64, 1 - p.rank(), 0);
    win.get(buf.data(), 64, 1 - p.rank(), 0);  // same epoch: hit (Fig. 4)
    EXPECT_EQ(win.last_access(), AccessType::kHitPending);
    win.flush_all();  // epoch closes: invalidation
    win.get(buf.data(), 64, 1 - p.rank(), 0);  // new epoch: miss again
    EXPECT_EQ(win.last_access(), AccessType::kDirect);
    win.flush_all();
    EXPECT_EQ(win.stats().invalidations, 2u);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, AlwaysCacheSurvivesEpochs) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 1024, &base, cache_cfg(Mode::kAlwaysCache));
    p.barrier();
    win.lock_all();
    std::vector<std::uint8_t> buf(64);
    for (int epoch = 0; epoch < 5; ++epoch) {
      win.get(buf.data(), 64, 1 - p.rank(), 0);
      win.flush_all();
    }
    EXPECT_EQ(win.stats().hits_full, 4u);
    EXPECT_EQ(win.stats().invalidations, 0u);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, UserDefinedModeExplicitInvalidate) {
  // Listing 1 of the paper: read-only epochs, then CLAMPI_Invalidate.
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 1024, &base, cache_cfg(Mode::kUserDefined));
    fill_pattern(base, 1024, p.rank());
    p.barrier();
    const int peer = 1 - p.rank();
    win.lock(rmasim::LockType::kShared, peer);
    std::vector<std::uint8_t> buf(64);
    win.get(buf.data(), 64, peer, 0);
    win.flush(peer);  // closes epoch; cache kept
    win.get(buf.data(), 64, peer, 0);
    EXPECT_EQ(win.last_access(), AccessType::kHit);
    win.flush(peer);
    clampi_invalidate(win);
    win.get(buf.data(), 64, peer, 0);
    EXPECT_EQ(win.last_access(), AccessType::kDirect);  // cold after invalidate
    win.flush(peer);
    win.unlock(peer);
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, PutBypassesCacheAndWrites) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    std::vector<std::uint8_t> mem(256, 0);
    auto win = CachedWindow::create(p, mem.data(), mem.size(), cache_cfg(Mode::kTransparent));
    p.barrier();
    if (p.rank() == 0) {
      const std::uint8_t v[4] = {9, 8, 7, 6};
      win.put(v, 4, 1, 100);
      win.flush_all();
    }
    p.barrier();
    if (p.rank() == 1) {
      EXPECT_EQ(mem[100], 9);
      EXPECT_EQ(mem[103], 6);
    }
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, TypedGetPacksAndCaches) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, cache_cfg(Mode::kAlwaysCache));
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    win.lock_all();
    const int peer = 1 - p.rank();
    // 4 blocks of 8 bytes with stride 32.
    const auto t = dt::Datatype::vector(4, 8, 32, dt::Datatype::contiguous(1));
    std::vector<std::uint8_t> a(t.size_of(1)), b(t.size_of(1));
    win.get(a.data(), t, 1, peer, 64);
    win.flush_all();
    win.get(b.data(), t, 1, peer, 64);
    EXPECT_EQ(win.last_access(), AccessType::kHit);
    std::size_t pos = 0;
    for (int blk = 0; blk < 4; ++blk) {
      for (int i = 0; i < 8; ++i, ++pos) {
        ASSERT_EQ(a[pos], pattern_at(64 + blk * 32 + i, peer));
        ASSERT_EQ(b[pos], a[pos]);
      }
    }
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, TypedGetMoreElementsIsPartialHit) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 8192, &base, cache_cfg(Mode::kAlwaysCache));
    fill_pattern(base, 8192, p.rank());
    p.barrier();
    win.lock_all();
    const int peer = 1 - p.rank();
    const auto t = dt::Datatype::vector(1, 16, 16, dt::Datatype::contiguous(1));  // 16B elem
    std::vector<std::uint8_t> a(t.size_of(4)), b(t.size_of(10));
    win.get(a.data(), t, 4, peer, 0);
    win.flush_all();
    win.get(b.data(), t, 10, peer, 0);
    EXPECT_EQ(win.last_access(), AccessType::kPartialHit);
    win.flush_all();
    for (std::size_t i = 0; i < b.size(); ++i) ASSERT_EQ(b[i], pattern_at(i, peer));
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, EpochCounterAdvances) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 256, &base, cache_cfg(Mode::kAlwaysCache));
    p.barrier();
    EXPECT_EQ(win.epoch(), 0u);
    win.lock_all();
    std::uint8_t b[8];
    win.get(b, 8, 1 - p.rank(), 0);
    win.flush_all();
    EXPECT_EQ(win.epoch(), 1u);
    win.unlock_all();
    EXPECT_EQ(win.epoch(), 2u);
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, FenceActsAsEpochBoundary) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 256, &base, cache_cfg(Mode::kTransparent));
    fill_pattern(base, 256, p.rank());
    win.fence();
    std::uint8_t b[8];
    win.get(b, 8, 1 - p.rank(), 0);
    win.fence();
    EXPECT_EQ(b[3], pattern_at(3, 1 - p.rank()));
    EXPECT_EQ(win.stats().invalidations, 1u);  // first fence had no traffic
    win.free_window();
  });
}

TEST(CachedWindow, FailingAccessesStillDeliverData) {
  // Weak caching: a cache that can store nothing must never break gets.
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    Config cfg = cache_cfg(Mode::kAlwaysCache);
    cfg.storage_bytes = 1024;  // tiny: most inserts fail
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 256 * 1024, &base, cfg);
    fill_pattern(base, 256 * 1024, p.rank());
    p.barrier();
    win.lock_all();
    const int peer = 1 - p.rank();
    std::vector<std::uint8_t> buf(8 * 1024);
    for (int i = 0; i < 20; ++i) {
      const std::size_t disp = static_cast<std::size_t>(i) * 8 * 1024;
      win.get(buf.data(), buf.size(), peer, disp);
      win.flush_all();
      for (std::size_t k = 0; k < buf.size(); k += 997) {
        ASSERT_EQ(buf[k], pattern_at(disp + k, peer));
      }
    }
    EXPECT_GT(win.stats().failing, 0u);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, AdaptiveGrowsUndersizedIndex) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    Config cfg = cache_cfg(Mode::kAlwaysCache);
    cfg.index_entries = 64;  // far too small for 512 distinct gets
    cfg.storage_bytes = 1 << 20;
    cfg.adaptive = true;
    cfg.adapt_interval = 256;
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 64 * 1024, &base, cfg);
    p.barrier();
    win.lock_all();
    std::vector<std::uint8_t> buf(64);
    for (int round = 0; round < 12; ++round) {
      for (int i = 0; i < 512; ++i) {
        win.get(buf.data(), 64, 1 - p.rank(), static_cast<std::size_t>(i) * 64);
      }
      win.flush_all();
    }
    EXPECT_GT(win.index_entries(), 64u);
    EXPECT_GT(win.stats().adjustments, 0u);
    // One warm round (the final adjustment may have just invalidated),
    // then the working set fits and a full round must hit.
    for (int i = 0; i < 512; ++i) {
      win.get(buf.data(), 64, 1 - p.rank(), static_cast<std::size_t>(i) * 64);
    }
    win.flush_all();
    const Stats before = win.stats();
    for (int i = 0; i < 512; ++i) {
      win.get(buf.data(), 64, 1 - p.rank(), static_cast<std::size_t>(i) * 64);
    }
    win.flush_all();
    const Stats d = win.stats().delta_since(before);
    EXPECT_GT(d.hitting(), 400u);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, AdaptiveGrowsUndersizedStorage) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    Config cfg = cache_cfg(Mode::kAlwaysCache);
    cfg.index_entries = 2048;
    cfg.storage_bytes = 64 << 10;  // min bound; holds working set / 4
    cfg.min_storage_bytes = 64 << 10;
    cfg.adaptive = true;
    cfg.adapt_interval = 512;
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 1 << 20, &base, cfg);
    p.barrier();
    win.lock_all();
    std::vector<std::uint8_t> buf(512);
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 512; ++i) {
        win.get(buf.data(), 512, 1 - p.rank(), static_cast<std::size_t>(i) * 512);
      }
      win.flush_all();
    }
    EXPECT_GT(win.storage_bytes(), std::size_t{64} << 10);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, ManyRanksConcurrentCaching) {
  Engine e(engine_cfg(8));
  e.run([](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, cache_cfg(Mode::kAlwaysCache));
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    win.lock_all();
    std::vector<std::uint8_t> buf(128);
    for (int round = 0; round < 3; ++round) {
      for (int t = 0; t < p.nranks(); ++t) {
        if (t == p.rank()) continue;
        win.get(buf.data(), 128, t, static_cast<std::size_t>(t) * 16);
        win.flush_all();
        for (int i = 0; i < 128; ++i) ASSERT_EQ(buf[i], pattern_at(t * 16 + i, t));
      }
    }
    EXPECT_EQ(win.stats().hits_full, 2u * 7u);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(CachedWindow, CoreInvariantsAfterHeavyChurn) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    Config cfg = cache_cfg(Mode::kAlwaysCache);
    cfg.index_entries = 128;
    cfg.storage_bytes = 32 * 1024;
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 1 << 20, &base, cfg);
    p.barrier();
    win.lock_all();
    clampi::util::Xoshiro256 rng(p.rank() + 1);
    std::vector<std::uint8_t> buf(4096);
    for (int i = 0; i < 5000; ++i) {
      const std::size_t disp = rng.bounded(256) * 2048;
      const std::size_t bytes = 1 + rng.bounded(2048);
      win.get(buf.data(), bytes, 1 - p.rank(), disp);
      if (i % 7 == 0) win.flush_all();
    }
    win.flush_all();
    EXPECT_TRUE(win.core().validate());
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

}  // namespace
