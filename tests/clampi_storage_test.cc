// Tests for S_w: best-fit AVL allocation, descriptor list, coalescing,
// in-place extension and the adjacent-free d_c metric (Secs. III-C2/C3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "clampi/storage.h"
#include "util/align.h"
#include "util/rng.h"

namespace {

using clampi::Storage;
using clampi::util::kCacheLineBytes;

TEST(Storage, CapacityRoundedToCacheLine) {
  Storage s(1000);
  EXPECT_EQ(s.capacity(), 1024u);
  EXPECT_EQ(s.free_bytes(), 1024u);
  EXPECT_TRUE(s.validate());
}

TEST(Storage, AllocSizesAreCacheLineMultiples) {
  Storage s(4096);
  auto* r = s.alloc(1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->size, kCacheLineBytes);
  auto* r2 = s.alloc(65);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->size, 2 * kCacheLineBytes);
  EXPECT_TRUE(s.validate());
}

TEST(Storage, AllocationsAreDisjointAndWritable) {
  Storage s(4096);
  std::vector<Storage::Region*> regs;
  for (int i = 0; i < 8; ++i) {
    auto* r = s.alloc(128);
    ASSERT_NE(r, nullptr);
    std::memset(s.data(r), i + 1, r->size);
    regs.push_back(r);
  }
  for (int i = 0; i < 8; ++i) {
    for (std::size_t b = 0; b < regs[i]->size; ++b) {
      ASSERT_EQ(std::to_integer<int>(s.data(regs[i])[b]), i + 1);
    }
  }
  EXPECT_TRUE(s.validate());
}

TEST(Storage, ExhaustionReturnsNull) {
  Storage s(256);
  EXPECT_NE(s.alloc(256), nullptr);
  EXPECT_EQ(s.alloc(1), nullptr);
  EXPECT_TRUE(s.validate());
}

TEST(Storage, BestFitPicksSmallestSufficientHole) {
  Storage s(64 * 10);
  auto* a = s.alloc(64);      // [0,64)
  auto* hole1 = s.alloc(128); // [64,192)  -> will become a 128B hole
  auto* b = s.alloc(64);      // [192,256)
  auto* hole2 = s.alloc(64);  // [256,320) -> will become a 64B hole
  auto* c = s.alloc(64);      // [320,384)
  (void)a;
  (void)b;
  (void)c;
  s.dealloc(hole1);
  s.dealloc(hole2);
  // Request 64B: best fit must choose the 64B hole at offset 256, not the
  // 128B hole at 64 (and not the trailing free space).
  auto* r = s.alloc(64);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->offset, 256u);
  EXPECT_TRUE(s.validate());
}

TEST(Storage, DeallocCoalescesBothSides) {
  Storage s(64 * 8);
  auto* a = s.alloc(64);
  auto* b = s.alloc(64);
  auto* c = s.alloc(64);
  s.alloc(64);  // guard so c does not merge with the tail free region
  s.dealloc(a);
  s.dealloc(c);
  EXPECT_TRUE(s.validate());
  s.dealloc(b);  // merges a+b+c into one 192B hole
  EXPECT_TRUE(s.validate());
  auto* r = s.alloc(192);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->offset, 0u);
}

TEST(Storage, ExternalFragmentationBlocksLargeAlloc) {
  // Free space is sufficient in total but split: the allocator must fail,
  // which is exactly the situation the positional score exists to avoid.
  Storage s(64 * 4);
  auto* a = s.alloc(64);
  auto* b = s.alloc(64);
  auto* c = s.alloc(64);
  auto* d = s.alloc(64);
  (void)b;
  (void)d;
  s.dealloc(a);
  s.dealloc(c);
  EXPECT_EQ(s.free_bytes(), 128u);
  EXPECT_EQ(s.largest_free(), 64u);
  EXPECT_EQ(s.alloc(128), nullptr);
  EXPECT_TRUE(s.validate());
}

TEST(Storage, TryExtendInPlace) {
  Storage s(64 * 8);
  auto* a = s.alloc(64);
  EXPECT_TRUE(s.try_extend(a, 128));  // eats the following free space
  EXPECT_EQ(a->size, 128u);
  EXPECT_TRUE(s.validate());
  // Block the next region and try again.
  auto* b = s.alloc(64);
  (void)b;
  EXPECT_FALSE(s.try_extend(a, 256));
  EXPECT_EQ(a->size, 128u);
  EXPECT_TRUE(s.validate());
}

TEST(Storage, TryExtendConsumesWholeNeighbour) {
  Storage s(64 * 4);
  auto* a = s.alloc(64);
  auto* b = s.alloc(64);
  auto* c = s.alloc(64);
  (void)c;
  s.dealloc(b);
  EXPECT_TRUE(s.try_extend(a, 128));  // exactly consumes b's hole
  EXPECT_EQ(a->size, 128u);
  EXPECT_TRUE(s.validate());
}

TEST(Storage, TryExtendNoopWhenAlreadyBigEnough) {
  Storage s(1024);
  auto* a = s.alloc(128);
  const std::size_t free_before = s.free_bytes();
  EXPECT_TRUE(s.try_extend(a, 100));
  EXPECT_EQ(s.free_bytes(), free_before);
}

TEST(Storage, AdjacentFreeTracksNeighbours) {
  Storage s(64 * 6);
  auto* a = s.alloc(64);
  auto* b = s.alloc(64);
  auto* c = s.alloc(64);
  auto* d = s.alloc(64);
  auto* e = s.alloc(64);
  (void)e;
  auto* tail_guard = s.alloc(64);
  (void)tail_guard;
  EXPECT_EQ(s.adjacent_free(b), 0u);
  s.dealloc(a);
  EXPECT_EQ(s.adjacent_free(b), 64u);
  s.dealloc(c);
  EXPECT_EQ(s.adjacent_free(b), 128u);
  s.dealloc(e);
  EXPECT_EQ(s.adjacent_free(d), 128u);  // c's hole + e's hole
  EXPECT_TRUE(s.validate());
}

TEST(Storage, ResetRestoresOneFreeRegion) {
  Storage s(2048);
  for (int i = 0; i < 10; ++i) s.alloc(100);
  s.reset();
  EXPECT_EQ(s.free_bytes(), s.capacity());
  EXPECT_EQ(s.allocated_regions(), 0u);
  EXPECT_EQ(s.largest_free(), s.capacity());
  EXPECT_TRUE(s.validate());
  EXPECT_NE(s.alloc(2048), nullptr);
}

TEST(Storage, RebuildChangesCapacity) {
  Storage s(1024);
  s.alloc(512);
  s.rebuild(4096);
  EXPECT_EQ(s.capacity(), 4096u);
  EXPECT_EQ(s.free_bytes(), 4096u);
  EXPECT_TRUE(s.validate());
}

// Property test: random alloc/free/extend sequences against a brute-force
// shadow allocator; validates byte accounting, disjointness and d_c.
class StorageRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorageRandomOps, InvariantsHoldUnderChurn) {
  clampi::util::Xoshiro256 rng(GetParam());
  Storage s(64 * 1024);
  std::vector<Storage::Region*> live;
  for (int step = 0; step < 30000; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.5) {
      const std::size_t want = 1 + rng.bounded(4096);
      auto* r = s.alloc(want);
      if (r != nullptr) {
        EXPECT_GE(r->size, want);
        live.push_back(r);
      }
    } else if (roll < 0.85 && !live.empty()) {
      const std::size_t i = rng.bounded(live.size());
      s.dealloc(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else if (!live.empty()) {
      const std::size_t i = rng.bounded(live.size());
      s.try_extend(live[i], live[i]->size + rng.bounded(512));
    }
    if (step % 2500 == 0) {
      ASSERT_TRUE(s.validate()) << "at step " << step;
      // Disjointness via sorted offsets.
      std::vector<std::pair<std::size_t, std::size_t>> spans;
      spans.reserve(live.size());
      for (auto* r : live) spans.emplace_back(r->offset, r->size);
      std::sort(spans.begin(), spans.end());
      for (std::size_t k = 1; k < spans.size(); ++k) {
        ASSERT_GE(spans[k].first, spans[k - 1].first + spans[k - 1].second);
      }
    }
  }
  ASSERT_TRUE(s.validate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageRandomOps, ::testing::Values(1u, 7u, 99u, 12345u));

}  // namespace
