// Tests for the shared skewed-key samplers (util/skew.h): Zipf via
// rejection-inversion, the normal index sampler, and the mix64 scrambler.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "util/error.h"
#include "util/skew.h"

namespace {

using clampi::util::NormalIndexSampler;
using clampi::util::Xoshiro256;
using clampi::util::ZipfSampler;

std::vector<std::uint64_t> histogram(const ZipfSampler& z, std::uint64_t draws,
                                     std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> counts(z.n(), 0);
  for (std::uint64_t i = 0; i < draws; ++i) {
    const std::uint64_t k = z(rng);
    EXPECT_LT(k, z.n());
    ++counts[k];
  }
  return counts;
}

/// Pearson chi-square statistic of the observed histogram against the
/// exact Zipf pmf (computable directly for small n).
double chi_square(const std::vector<std::uint64_t>& counts, double s,
                  std::uint64_t draws) {
  const std::uint64_t n = counts.size();
  double norm = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) norm += std::pow(static_cast<double>(k), -s);
  double stat = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    const double expected =
        static_cast<double>(draws) * std::pow(static_cast<double>(k), -s) / norm;
    const double diff = static_cast<double>(counts[k - 1]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

TEST(ZipfSampler, ChiSquareMatchesExactPmf) {
  // n = 32 bins, 200k draws. 99.9th percentile of chi^2 with df = 31 is
  // ~61.1; a correct sampler passes with the fixed seed, a subtly skewed
  // one (wrong normalization, off-by-one rank) blows far past it.
  for (const double s : {0.5, 0.99, 1.0, 1.5}) {
    const ZipfSampler z(32, s);
    const auto counts = histogram(z, 200000, /*seed=*/42);
    EXPECT_LT(chi_square(counts, s, 200000), 61.1) << "s = " << s;
  }
}

TEST(ZipfSampler, UniformWhenExponentZero) {
  const ZipfSampler z(32, 0.0);
  const auto counts = histogram(z, 200000, /*seed=*/7);
  EXPECT_LT(chi_square(counts, 0.0, 200000), 61.1);
}

TEST(ZipfSampler, DeterministicGivenSeed) {
  const ZipfSampler z(1000, 0.99);
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z(a), z(b));
}

TEST(ZipfSampler, RankZeroIsHottest) {
  const ZipfSampler z(std::uint64_t{1} << 20, 0.99);
  Xoshiro256 rng(9);
  std::uint64_t head = 0, tail = 0;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t k = z(rng);
    ASSERT_LT(k, std::uint64_t{1} << 20);
    if (k == 0) ++head;
    if (k >= std::uint64_t{1} << 19) ++tail;
  }
  // p(rank 0) ~ 1/H ~ 6.7% at s=0.99, n=2^20; the entire top half of the
  // rank space together carries only a few percent.
  EXPECT_GT(head, 2000u);
  EXPECT_LT(tail, 5000u);
}

TEST(ZipfSampler, SingleElementAndValidation) {
  const ZipfSampler one(1, 0.99);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(one(rng), 0u);
  EXPECT_THROW(ZipfSampler(0, 1.0), clampi::util::ContractError);
  EXPECT_THROW(ZipfSampler(10, -0.5), clampi::util::ContractError);
}

TEST(NormalIndexSampler, InRangeAndCentered) {
  const std::uint64_t n = 1024;
  const NormalIndexSampler sampler(n, n / 2.0, n / 8.0);
  Xoshiro256 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = sampler(rng);
    ASSERT_LT(v, n);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / 20000.0, n / 2.0, n / 32.0);
}

TEST(Mix64, ScramblesWithoutCollisions) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(clampi::util::mix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);  // it's a bijection: no collisions ever
  EXPECT_NE(clampi::util::mix64(0), 0u);
}

}  // namespace
