// Tests for the fault-injection subsystem at the engine level: plans,
// injector verdicts, zero-overhead-when-off, rank death, degraded epochs
// and the interaction with NIC injection serialization.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/error.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;
using rmasim::Window;

Engine::Config ecfg(int nranks, std::shared_ptr<fault::Injector> inj = nullptr,
                    bool serialize = false) {
  Engine::Config c;
  c.nranks = nranks;
  c.model = std::make_shared<net::FlatModel>(10.0, 0.0);  // 10us per transfer
  c.time_policy = rmasim::TimePolicy::kModeled;
  c.serialize_injection = serialize;
  c.injector = std::move(inj);
  return c;
}

// ---------------------------------------------------------------------------
// Plan / Injector unit behaviour
// ---------------------------------------------------------------------------

TEST(FaultPlan, TrivialAndHelpers) {
  fault::Plan p;
  EXPECT_TRUE(p.trivial());
  p.fail_everywhere(0.1);
  EXPECT_FALSE(p.trivial());
  EXPECT_DOUBLE_EQ(p.fail_prob[static_cast<std::size_t>(net::Distance::kSelf)], 0.0);

  fault::Plan q;
  q.kill_rank(3, 100.0);
  EXPECT_FALSE(q.trivial());
  ASSERT_EQ(q.death_us.size(), 4u);
  EXPECT_LT(q.death_us[0], 0.0);  // other ranks never die
  EXPECT_DOUBLE_EQ(q.death_us[3], 100.0);

  fault::Plan r;
  r.degrade_rank(1, 4.0, 10.0, 50.0);
  EXPECT_FALSE(r.trivial());
}

TEST(FaultPlan, InjectorRejectsMalformedPlans) {
  fault::Plan p;
  p.fail_prob[1] = 1.5;
  EXPECT_THROW(fault::Injector{p}, util::ContractError);

  fault::Plan q;
  q.degrade_rank(0, 0.5, 0.0, 10.0);  // "degraded" epochs must slow down
  EXPECT_THROW(fault::Injector{q}, util::ContractError);
}

TEST(FaultPlan, ReviveAndTargetFailHelpers) {
  fault::Plan p;
  p.kill_rank(2, 100.0).revive_rank(2, 500.0);
  EXPECT_FALSE(p.trivial());
  ASSERT_EQ(p.revive_us.size(), 3u);
  EXPECT_LT(p.revive_us[0], 0.0);  // other ranks have no revival instant
  EXPECT_DOUBLE_EQ(p.revive_us[2], 500.0);

  fault::Plan q;
  q.fail_target(1, 0.25);
  EXPECT_FALSE(q.trivial());  // per-target failures alone make it non-trivial
  ASSERT_EQ(q.target_fail_prob.size(), 2u);
  EXPECT_DOUBLE_EQ(q.target_fail_prob[0], 0.0);
  EXPECT_DOUBLE_EQ(q.target_fail_prob[1], 0.25);
}

TEST(FaultPlan, InjectorRejectsMalformedRevivals) {
  // Revival without a death instant is meaningless.
  fault::Plan p;
  p.revive_rank(1, 500.0);
  EXPECT_THROW(fault::Injector{p}, util::ContractError);

  // Revival must come strictly after the death.
  fault::Plan q;
  q.kill_rank(1, 500.0).revive_rank(1, 500.0);
  EXPECT_THROW(fault::Injector{q}, util::ContractError);

  fault::Plan r;
  r.fail_target(1, 1.5);
  EXPECT_THROW(fault::Injector{r}, util::ContractError);

  fault::Plan ok;
  ok.kill_rank(1, 500.0).revive_rank(1, 500.1);
  EXPECT_NO_THROW(fault::Injector{ok});
}

TEST(FaultInjector, DeadIsFalseAfterRevival) {
  fault::Plan p;
  p.kill_rank(1, 100.0).revive_rank(1, 300.0);
  fault::Injector inj(p);
  inj.prepare(3);
  EXPECT_FALSE(inj.dead(1, 50.0));
  EXPECT_TRUE(inj.dead(1, 200.0));
  EXPECT_FALSE(inj.dead(1, 300.0));  // alive again from the revival instant
  EXPECT_FALSE(inj.dead(1, 1e9));
  EXPECT_FALSE(inj.dead(0, 1e9));
}

TEST(FaultInjector, TargetFailProbIsPerTarget) {
  fault::Plan p;
  p.fail_target(1, 1.0);  // every op against rank 1 fails; rank 2 is clean
  fault::Injector inj(p);
  inj.prepare(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(inj.on_op(fault::OpKind::kGet, 0, 1, 64, 0.0).fail);
    EXPECT_FALSE(inj.on_op(fault::OpKind::kGet, 0, 2, 64, 0.0).fail);
  }
}

TEST(FaultInjector, DeterministicAcrossInstances) {
  fault::Plan p;
  p.fail_everywhere(0.3);
  p.spike_prob = 0.2;
  p.spike_factor = 3.0;
  fault::Injector a(p);
  fault::Injector b(p);
  a.prepare(4);
  b.prepare(4);
  for (int i = 0; i < 200; ++i) {
    const auto va = a.on_op(fault::OpKind::kGet, 0, 1, 64, 0.0);
    const auto vb = b.on_op(fault::OpKind::kGet, 0, 1, 64, 0.0);
    EXPECT_EQ(va.fail, vb.fail);
    EXPECT_EQ(va.latency_factor, vb.latency_factor);
  }
  EXPECT_EQ(a.injected_failures(), b.injected_failures());
  EXPECT_GT(a.injected_failures(), 0u);
  EXPECT_LT(a.injected_failures(), 200u);
}

TEST(FaultInjector, SeedChangesSchedule) {
  fault::Plan p;
  p.fail_everywhere(0.3);
  fault::Plan q = p;
  q.seed ^= 0xdeadbeefull;
  fault::Injector a(p);
  fault::Injector b(q);
  int differs = 0;
  for (int i = 0; i < 200; ++i) {
    const auto va = a.on_op(fault::OpKind::kGet, 0, 1, 64, 0.0);
    const auto vb = b.on_op(fault::OpKind::kGet, 0, 1, 64, 0.0);
    differs += va.fail != vb.fail;
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultInjector, PerturbIsExactIdentityWhenUnperturbed) {
  fault::Injector::Verdict v;  // factor 1.0, addend 0.0
  const double x = 123.456789e-3;
  EXPECT_EQ(fault::Injector::perturb(v, x), x);  // bitwise, not approximate
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

double run_workload(const Engine::Config& cfg, std::vector<double>* per_rank = nullptr) {
  Engine e(cfg);
  e.run([](Process& p) {
    void* base = nullptr;
    const Window w = p.win_allocate(4096, &base);
    char buf[256];
    const int n = p.nranks();
    for (int i = 0; i < 16; ++i) {
      const int tgt = (p.rank() + 1 + i) % n;
      p.get(buf, 64, tgt, static_cast<std::size_t>(i) * 64, w);
    }
    p.flush_all(w);
    for (int i = 0; i < 4; ++i) p.put(buf, 128, (p.rank() + 1) % n, 0, w);
    p.flush((p.rank() + 1) % n, w);
    p.barrier();
    p.win_free(w);
  });
  if (per_rank != nullptr) {
    for (int r = 0; r < cfg.nranks; ++r) per_rank->push_back(e.final_time_us(r));
  }
  return e.max_final_time_us();
}

TEST(FaultEngine, AllZeroPlanIsBitIdenticalToNoInjector) {
  std::vector<double> without;
  std::vector<double> with_zero;
  run_workload(ecfg(4), &without);
  run_workload(ecfg(4, std::make_shared<fault::Injector>(fault::Plan{})), &with_zero);
  ASSERT_EQ(without.size(), with_zero.size());
  for (std::size_t r = 0; r < without.size(); ++r) {
    EXPECT_EQ(without[r], with_zero[r]) << "rank " << r;  // exact, not NEAR
  }
}

TEST(FaultEngine, LatencySpikesSlowTransfersDeterministically) {
  // spike_prob = 1: every transfer pays factor*xfer + addend.
  fault::Plan p;
  p.spike_prob = 1.0;
  p.spike_factor = 3.0;
  p.spike_addend_us = 5.0;
  Engine e(ecfg(2, std::make_shared<fault::Injector>(p)));
  auto dt = std::make_shared<double>(0.0);
  e.run([dt](Process& p) {
    void* base = nullptr;
    const Window w = p.win_allocate(1024, &base);
    if (p.rank() == 0) {
      char buf[64];
      const double t0 = p.now_us();
      p.get(buf, 64, 1, 0, w);
      p.flush(1, w);
      *dt = p.now_us() - t0;
    }
    p.barrier();
    p.win_free(w);
  });
  // FlatModel: 10us transfer -> 3*10 + 5 = 35us (plus negligible issue).
  EXPECT_GE(*dt, 35.0);
  EXPECT_LT(*dt, 36.0);
}

TEST(FaultEngine, TransientFailureThrowsRecoverableError) {
  fault::Plan p;
  p.fail_everywhere(1.0);
  Engine e(ecfg(2, std::make_shared<fault::Injector>(p)));
  auto caught = std::make_shared<int>(0);
  e.run([caught](Process& p) {
    void* base = nullptr;
    const Window w = p.win_allocate(1024, &base);
    if (p.rank() == 0) {
      char buf[64];
      try {
        p.get(buf, 64, 1, 0, w);
      } catch (const fault::OpFailedError& err) {
        EXPECT_TRUE(err.recoverable());
        EXPECT_EQ(err.failure(), fault::FailureKind::kTransient);
        EXPECT_EQ(err.op().kind, fault::OpKind::kGet);
        EXPECT_EQ(err.op().origin, 0);
        EXPECT_EQ(err.op().target, 1);
        EXPECT_EQ(err.op().bytes, 64u);
        ++*caught;
      }
      p.flush(1, w);  // nothing pending: completes instantly
    }
    p.barrier();
    p.win_free(w);
  });
  EXPECT_EQ(*caught, 1);
}

TEST(FaultEngine, DeadRankFailsOpsAndFlushes) {
  fault::Plan p;
  p.kill_rank(1, 0.0);  // dead from the start
  Engine e(ecfg(3, std::make_shared<fault::Injector>(p)));
  auto outcome = std::make_shared<std::vector<int>>();
  e.run([outcome](Process& p) {
    void* base = nullptr;
    const Window w = p.win_allocate(1024, &base);
    if (p.rank() == 0) {
      char buf[64];
      // Op against the dead rank fails permanently.
      try {
        p.get(buf, 64, 1, 0, w);
        outcome->push_back(-1);
      } catch (const fault::OpFailedError& err) {
        EXPECT_FALSE(err.recoverable());
        EXPECT_EQ(err.failure(), fault::FailureKind::kRankDead);
        outcome->push_back(1);
      }
      // Ops against a live rank still work.
      p.get(buf, 64, 2, 0, w);
      p.flush(2, w);
      outcome->push_back(2);
    }
    p.barrier();
    p.win_free(w);
  });
  ASSERT_EQ(outcome->size(), 2u);
  EXPECT_EQ((*outcome)[0], 1);
  EXPECT_EQ((*outcome)[1], 2);
}

TEST(FaultEngine, DeathAfterInstantFailsPendingFlush) {
  // Rank 1 dies at t = 50us (after window allocation, which itself costs
  // virtual time); the get issued while it is alive succeeds, but the
  // flush (which happens after the death instant) cannot complete it.
  fault::Plan p;
  p.kill_rank(1, 50.0);
  Engine e(ecfg(2, std::make_shared<fault::Injector>(p)));
  auto flush_failed = std::make_shared<int>(0);
  e.run([flush_failed](Process& p) {
    void* base = nullptr;
    const Window w = p.win_allocate(1024, &base);
    if (p.rank() == 0) {
      char buf[64];
      ASSERT_LT(p.now_us(), 50.0);  // rank 1 must still be alive here
      p.get(buf, 64, 1, 0, w);      // issued before the death instant
      p.compute_us(100.0);          // cross t = 50us
      try {
        p.flush(1, w);
      } catch (const fault::OpFailedError& err) {
        EXPECT_EQ(err.failure(), fault::FailureKind::kRankDead);
        EXPECT_EQ(err.op().kind, fault::OpKind::kFlush);
        ++*flush_failed;
      }
      // Pending state was consumed: a repeat flush completes trivially.
      p.flush(1, w);
      // flush_all with nothing pending is also clean.
      p.flush_all(w);
    }
    p.barrier();
    p.win_free(w);
  });
  EXPECT_EQ(*flush_failed, 1);
}

TEST(FaultEngine, DegradedEpochSlowsOnlyItsWindow) {
  // Rank 1 is 4x slower in [0us, 100us); after the epoch it recovers.
  fault::Plan p;
  p.degrade_rank(1, 4.0, 0.0, 100.0);
  Engine e(ecfg(2, std::make_shared<fault::Injector>(p)));
  auto during = std::make_shared<double>(0.0);
  auto after = std::make_shared<double>(0.0);
  e.run([during, after](Process& p) {
    void* base = nullptr;
    const Window w = p.win_allocate(1024, &base);
    if (p.rank() == 0) {
      char buf[64];
      double t0 = p.now_us();
      p.get(buf, 64, 1, 0, w);
      p.flush(1, w);
      *during = p.now_us() - t0;
      p.compute_us(200.0);  // leave the degraded window
      t0 = p.now_us();
      p.get(buf, 64, 1, 0, w);
      p.flush(1, w);
      *after = p.now_us() - t0;
    }
    p.barrier();
    p.win_free(w);
  });
  EXPECT_GE(*during, 40.0);  // 4 * 10us
  EXPECT_LT(*during, 41.0);
  EXPECT_GE(*after, 10.0);
  EXPECT_LT(*after, 11.0);
}

// Satellite: serialize_injection combined with fault injection — a
// many-to-one incast against a degraded target queues behind its NIC,
// with each queued transfer also paying the degradation factor.
TEST(FaultEngine, SerializedIncastAgainstDegradedTarget) {
  const int kRanks = 5;  // 4 origins -> rank 0
  const auto run_incast = [&](double factor) {
    fault::Plan p;
    if (factor > 1.0) p.degrade_rank(0, factor, 0.0, fault::kForever);
    Engine e(ecfg(kRanks, std::make_shared<fault::Injector>(p), /*serialize=*/true));
    auto maxt = std::make_shared<double>(0.0);
    e.run([maxt](Process& p) {
      void* base = nullptr;
      const Window w = p.win_allocate(4096, &base);
      if (p.rank() != 0) {
        char buf[64];
        p.get(buf, 64, 0, 0, w);
        p.flush(0, w);
      }
      p.barrier();
      if (p.rank() == 0) *maxt = p.now_us();
      p.win_free(w);
    });
    return *maxt;
  };
  const double clean = run_incast(1.0);
  const double degraded = run_incast(4.0);
  // Clean serialized incast: 4 transfers x 10us queue on rank 0's NIC.
  EXPECT_GE(clean, 40.0);
  // Degradation multiplies every queued transfer's service time.
  EXPECT_GE(degraded, 160.0);
  // The two runs differ only in the incast phase: 4 x 40us vs 4 x 10us
  // of serialized service (setup/teardown costs are identical).
  EXPECT_GE(degraded - clean, 115.0);
}

TEST(FaultEngine, IdenticalSeedsIdenticalRuns) {
  fault::Plan p;
  p.fail_everywhere(0.2);
  p.spike_prob = 0.3;
  p.spike_factor = 2.0;

  const auto run_once = [&] {
    Engine e(ecfg(4, std::make_shared<fault::Injector>(p)));
    auto failures = std::make_shared<std::vector<int>>(4, 0);
    e.run([failures](Process& p) {
      void* base = nullptr;
      const Window w = p.win_allocate(4096, &base);
      char buf[64];
      for (int i = 0; i < 32; ++i) {
        try {
          p.get(buf, 64, (p.rank() + 1) % p.nranks(), 0, w);
        } catch (const fault::OpFailedError&) {
          ++(*failures)[static_cast<std::size_t>(p.rank())];
        }
      }
      p.flush_all(w);
      p.barrier();
      p.win_free(w);
    });
    std::vector<double> times;
    for (int r = 0; r < 4; ++r) times.push_back(e.final_time_us(r));
    return std::make_pair(*failures, times);
  };

  const auto [fail_a, time_a] = run_once();
  const auto [fail_b, time_b] = run_once();
  EXPECT_EQ(fail_a, fail_b);
  for (std::size_t r = 0; r < time_a.size(); ++r) {
    EXPECT_EQ(time_a[r], time_b[r]) << "rank " << r;
  }
  int total = 0;
  for (const int f : fail_a) total += f;
  EXPECT_GT(total, 0);  // the plan actually injected something
}

}  // namespace
