// Tests for trace recording, (de)serialization and replay.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "clampi/trace.h"
#include "netmodel/model.h"
#include "rt/engine.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;
using trace::Event;
using trace::RecordingWindow;
using trace::Trace;

Engine::Config ecfg(int nranks) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

Trace sample_trace() {
  Trace t;
  t.add_get(1, 0, 64);
  t.add_get(1, 128, 256);
  t.add_flush(1);
  t.add_get(1, 0, 64);
  t.add_flush_all();
  t.add_invalidate();
  return t;
}

TEST(Trace, Summaries) {
  const Trace t = sample_trace();
  EXPECT_EQ(t.num_gets(), 3u);
  EXPECT_EQ(t.distinct_keys(), 2u);
  EXPECT_EQ(t.total_bytes(), 384u);
  EXPECT_EQ(t.max_bytes(), 256u);
}

TEST(Trace, SaveLoadRoundTrip) {
  const Trace t = sample_trace();
  std::stringstream ss;
  t.save(ss);
  const Trace u = Trace::load(ss);
  ASSERT_EQ(u.events.size(), t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(u.events[i].kind, t.events[i].kind);
    EXPECT_EQ(u.events[i].target, t.events[i].target);
    EXPECT_EQ(u.events[i].disp, t.events[i].disp);
    EXPECT_EQ(u.events[i].bytes, t.events[i].bytes);
  }
}

TEST(Trace, LoadSkipsCommentsRejectsGarbage) {
  std::stringstream good("# comment\n\ng 2 100 8\nF\n");
  const Trace t = Trace::load(good);
  EXPECT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[0].target, 2);

  std::stringstream bad("z 1 2 3\n");
  EXPECT_THROW(Trace::load(bad), util::ContractError);
  std::stringstream truncated("g 1\n");
  EXPECT_THROW(Trace::load(truncated), util::ContractError);
}

TEST(Trace, FaultRetryEventsRoundTrip) {
  Trace t;
  t.add_get(1, 0, 64);
  t.add_fault(1, 0, 64);
  t.add_retry(1, /*attempt=*/1, /*backoff_ns=*/4000);
  t.add_retry(1, /*attempt=*/2, /*backoff_ns=*/8123);
  t.add_flush(1);

  std::stringstream ss;
  t.save(ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("x 1 0 64"), std::string::npos);
  EXPECT_NE(text.find("r 1 2 8123"), std::string::npos);

  const Trace u = Trace::load(ss);
  ASSERT_EQ(u.events.size(), t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(u.events[i].kind, t.events[i].kind);
    EXPECT_EQ(u.events[i].target, t.events[i].target);
    EXPECT_EQ(u.events[i].disp, t.events[i].disp);
    EXPECT_EQ(u.events[i].bytes, t.events[i].bytes);
  }
}

TEST(Trace, IntegrityEventsRoundTrip) {
  Trace t;
  t.add_get(1, 0, 64);
  t.add_corruption(1, 0, 64);        // self-healed hit on target 1
  t.add_corruption(-1, 0, 3);        // scrub summary: 3 entries quarantined
  t.add_breaker(1);  // kOpen
  t.add_breaker(0);  // kClosed
  t.add_flush_all();

  std::stringstream ss;
  t.save(ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("c 1 0 64"), std::string::npos);
  EXPECT_NE(text.find("c -1 0 3"), std::string::npos);
  EXPECT_NE(text.find("b 1"), std::string::npos);

  const Trace u = Trace::load(ss);
  ASSERT_EQ(u.events.size(), t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(u.events[i].kind, t.events[i].kind);
    EXPECT_EQ(u.events[i].target, t.events[i].target);
    EXPECT_EQ(u.events[i].disp, t.events[i].disp);
    EXPECT_EQ(u.events[i].bytes, t.events[i].bytes);
  }
}

TEST(Trace, ReplayCoreSkipsIntegrityAnnotations) {
  Trace plain = sample_trace();
  Trace annotated = sample_trace();
  annotated.events.insert(annotated.events.begin() + 1,
                          {Event::Kind::kCorruption, 1, 0, 64});
  annotated.events.insert(annotated.events.begin() + 2,
                          {Event::Kind::kBreaker, 1, 0, 0});

  Config cfg;
  cfg.index_entries = 64;
  cfg.storage_bytes = 4096;
  CacheCore a(cfg);
  CacheCore b(cfg);
  const Stats sa = trace::replay_core(plain, a);
  const Stats sb = trace::replay_core(annotated, b);
  EXPECT_EQ(sa.total_gets, sb.total_gets);
  EXPECT_EQ(sa.hits_full, sb.hits_full);
  EXPECT_EQ(sa.bytes_from_cache, sb.bytes_from_cache);
  EXPECT_EQ(sa.bytes_from_network, sb.bytes_from_network);
}

TEST(Trace, OldTracesWithoutFaultEventsStillParse) {
  // A pre-fault-format trace (only g/f/F/I lines) must load unchanged.
  std::stringstream legacy("g 2 100 8\nf 2\ng 0 0 16\nF\nI\n");
  const Trace t = Trace::load(legacy);
  ASSERT_EQ(t.events.size(), 5u);
  EXPECT_EQ(t.events[0].kind, Event::Kind::kGet);
  EXPECT_EQ(t.events[1].kind, Event::Kind::kFlush);
  EXPECT_EQ(t.events[3].kind, Event::Kind::kFlushAll);
  EXPECT_EQ(t.events[4].kind, Event::Kind::kInvalidate);
}

TEST(Trace, ReplayCoreSkipsFaultAnnotations) {
  // Fault/retry annotations must not perturb replay statistics.
  Trace plain = sample_trace();
  Trace annotated = sample_trace();
  annotated.events.insert(annotated.events.begin() + 1,
                          {Event::Kind::kFault, 1, 0, 64});
  annotated.events.insert(annotated.events.begin() + 2,
                          {Event::Kind::kRetry, 1, 1, 4000});

  Config cfg;
  cfg.index_entries = 64;
  cfg.storage_bytes = 4096;
  CacheCore a(cfg);
  CacheCore b(cfg);
  const Stats sa = trace::replay_core(plain, a);
  const Stats sb = trace::replay_core(annotated, b);
  EXPECT_EQ(sa.total_gets, sb.total_gets);
  EXPECT_EQ(sa.hits_full, sb.hits_full);
  EXPECT_EQ(sa.bytes_from_cache, sb.bytes_from_cache);
  EXPECT_EQ(sa.bytes_from_network, sb.bytes_from_network);
}

TEST(Trace, HealthEventsRoundTrip) {
  Trace t;
  t.add_get(1, 0, 64);
  t.add_health(1, 2);   // target 1 -> kQuarantined
  t.add_health(1, 3);   // target 1 -> kProbing
  t.add_health(1, 0);   // target 1 -> kHealthy (reclosed)
  t.add_flush_all();

  std::stringstream ss;
  t.save(ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("h 1 2"), std::string::npos);
  EXPECT_NE(text.find("h 1 3"), std::string::npos);
  EXPECT_NE(text.find("h 1 0"), std::string::npos);

  const Trace u = Trace::load(ss);
  ASSERT_EQ(u.events.size(), t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(u.events[i].kind, t.events[i].kind);
    EXPECT_EQ(u.events[i].target, t.events[i].target);
    EXPECT_EQ(u.events[i].disp, t.events[i].disp);
    EXPECT_EQ(u.events[i].bytes, t.events[i].bytes);
  }
}

TEST(Trace, ReplayCoreSkipsHealthAnnotations) {
  // Health-transition annotations must not perturb replay statistics, so
  // traces recorded with the detector on replay like their plain twins.
  Trace plain = sample_trace();
  Trace annotated = sample_trace();
  annotated.events.insert(annotated.events.begin() + 1,
                          {Event::Kind::kHealth, 1, 2, 0});
  annotated.events.insert(annotated.events.begin() + 2,
                          {Event::Kind::kHealth, 1, 0, 0});

  Config cfg;
  cfg.index_entries = 64;
  cfg.storage_bytes = 4096;
  CacheCore a(cfg);
  CacheCore b(cfg);
  const Stats sa = trace::replay_core(plain, a);
  const Stats sb = trace::replay_core(annotated, b);
  EXPECT_EQ(sa.total_gets, sb.total_gets);
  EXPECT_EQ(sa.hits_full, sb.hits_full);
  EXPECT_EQ(sa.bytes_from_cache, sb.bytes_from_cache);
  EXPECT_EQ(sa.bytes_from_network, sb.bytes_from_network);
}

TEST(Trace, ReplayCoreReproducesAccessMix) {
  // Two epochs of the same three keys: first all direct, then all hits;
  // after the invalidation everything is cold again.
  Trace t;
  for (int round = 0; round < 2; ++round) {
    for (int k = 0; k < 3; ++k) t.add_get(0, static_cast<std::uint64_t>(k) * 4096, 512);
    t.add_flush_all();
  }
  t.add_invalidate();
  for (int k = 0; k < 3; ++k) t.add_get(0, static_cast<std::uint64_t>(k) * 4096, 512);
  t.add_flush_all();

  Config cfg;
  cfg.mode = Mode::kAlwaysCache;
  cfg.index_entries = 64;
  cfg.storage_bytes = 64 * 1024;
  CacheCore core(cfg);
  const Stats st = trace::replay_core(t, core);
  EXPECT_EQ(st.total_gets, 9u);
  EXPECT_EQ(st.direct, 6u);      // 3 cold + 3 after invalidation
  EXPECT_EQ(st.hits_full, 3u);   // the middle epoch
  EXPECT_EQ(st.invalidations, 1u);
  EXPECT_TRUE(core.validate());
}

TEST(Trace, ReplayCoreHandlesPendingHits) {
  Trace t;
  t.add_get(0, 0, 128);
  t.add_get(0, 0, 128);  // same epoch: pending hit
  t.add_flush_all();
  Config cfg;
  cfg.index_entries = 64;
  cfg.storage_bytes = 64 * 1024;
  CacheCore core(cfg);
  const Stats st = trace::replay_core(t, core);
  EXPECT_EQ(st.hits_pending, 1u);
  EXPECT_EQ(core.pending_entries(), 0u);  // flush materialized it
}

TEST(Trace, RecordThenReplayWindowMatchesStats) {
  Engine e(ecfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    cfg.index_entries = 256;
    cfg.storage_bytes = 256 * 1024;
    auto win = CachedWindow::allocate(p, 64 * 1024, &base, cfg);
    p.barrier();
    win.lock_all();

    // Record an irregular access pattern.
    Trace t;
    RecordingWindow rec(win, t);
    std::vector<std::byte> buf(4096);
    util::Xoshiro256 rng(3);
    for (int i = 0; i < 500; ++i) {
      rec.get(buf.data(), 64 + rng.bounded(1024), 1 - p.rank(), rng.bounded(32) * 2048);
      if (i % 8 == 7) rec.flush_all();
    }
    rec.flush_all();
    const Stats live = win.stats();
    win.unlock_all();

    // Offline replay of the recorded trace must classify identically
    // (same config, same deterministic hash seeds).
    CacheCore core(cfg);
    const Stats replayed = trace::replay_core(t, core);
    EXPECT_EQ(replayed.total_gets, live.total_gets);
    EXPECT_EQ(replayed.hits_full, live.hits_full);
    EXPECT_EQ(replayed.hits_pending, live.hits_pending);
    EXPECT_EQ(replayed.hits_partial, live.hits_partial);
    EXPECT_EQ(replayed.direct, live.direct);
    EXPECT_EQ(replayed.conflicting, live.conflicting);
    EXPECT_EQ(replayed.capacity, live.capacity);
    EXPECT_EQ(replayed.failing, live.failing);

    p.barrier();
    win.free_window();
  });
}

TEST(Trace, ReplayWindowRunsAndReturnsTime) {
  Engine e(ecfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    auto win = CachedWindow::allocate(p, 8192, &base, cfg);
    p.barrier();
    win.lock_all();
    Trace t;
    t.add_get(1 - p.rank(), 0, 512);
    t.add_flush_all();
    t.add_get(1 - p.rank(), 0, 512);  // hit
    t.add_flush_all();
    const double us = trace::replay_window(t, win);
    EXPECT_GT(us, 0.0);
    EXPECT_EQ(win.stats().hits_full, 1u);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

}  // namespace
