// Edge cases and failure-injection tests for the CLaMPI core and window:
// entry relocation, boundary geometry, datatype layout mismatches,
// native-cache clamping, and long-run invariants under adversarial
// request streams.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "bh/native_cache.h"
#include "clampi/clampi.h"
#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/rng.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;

Engine::Config ecfg(int nranks) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

void materialize(CacheCore& c, std::uint32_t entry, std::uint8_t fill) {
  std::vector<std::uint8_t> buf(c.entry_bytes(entry), fill);
  std::memcpy(c.entry_data(entry), buf.data(), buf.size());
  c.mark_cached(entry);
}

TEST(CacheEdge, PartialHitRelocatesWhenInPlaceBlocked) {
  // Storage layout: [A][B][free...]. Extending A in place is impossible
  // (B follows it), so the partial hit must relocate A and keep its data.
  Config cfg;
  cfg.mode = Mode::kAlwaysCache;
  cfg.index_entries = 128;
  cfg.storage_bytes = 4096;
  CacheCore c(cfg);
  const auto a = c.access({0, 0}, 64);
  materialize(c, a.entry, 0xaa);
  const auto b = c.access({0, 1000}, 64);
  materialize(c, b.entry, 0xbb);

  const auto r = c.access({0, 0}, 256);  // partial hit on A
  EXPECT_EQ(r.type, AccessType::kPartialHit);
  EXPECT_TRUE(r.extended);
  EXPECT_EQ(c.entry_bytes(r.entry), 256u);
  // Head bytes survived the move.
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(std::to_integer<int>(c.entry_data(r.entry)[i]), 0xaa);
  }
  // B untouched.
  ASSERT_EQ(std::to_integer<int>(c.entry_data(b.entry)[0]), 0xbb);
  EXPECT_TRUE(c.validate());
}

TEST(CacheEdge, RepeatedExtensionGrowsMonotonically) {
  Config cfg;
  cfg.mode = Mode::kAlwaysCache;
  cfg.index_entries = 64;
  cfg.storage_bytes = 64 * 1024;
  CacheCore c(cfg);
  auto r = c.access({0, 0}, 64);
  materialize(c, r.entry, 1);
  for (std::size_t sz = 128; sz <= 8192; sz *= 2) {
    r = c.access({0, 0}, sz);
    ASSERT_EQ(r.type, AccessType::kPartialHit) << sz;
    ASSERT_TRUE(r.extended) << sz;
    materialize(c, r.entry, 1);
    ASSERT_TRUE(c.validate());
  }
  EXPECT_EQ(c.entry_bytes(r.entry), 8192u);
  EXPECT_EQ(c.stats().hits_partial, 7u);
}

TEST(CacheEdge, EntryExactlyFillingStorage) {
  Config cfg;
  cfg.mode = Mode::kAlwaysCache;
  cfg.index_entries = 64;
  cfg.storage_bytes = 4096;
  CacheCore c(cfg);
  const auto r = c.access({0, 0}, 4096);  // whole buffer
  EXPECT_EQ(r.type, AccessType::kDirect);
  materialize(c, r.entry, 7);
  EXPECT_EQ(c.free_bytes(), 0u);
  EXPECT_EQ(c.access({0, 0}, 4096).type, AccessType::kHit);
  // Any second entry must evict the only one.
  const auto s = c.access({0, 9999}, 64);
  EXPECT_EQ(s.type, AccessType::kCapacity);
  EXPECT_TRUE(c.validate());
}

TEST(CacheEdge, ManyTargetsSameDisplacement) {
  Config cfg;
  cfg.mode = Mode::kAlwaysCache;
  cfg.index_entries = 512;
  cfg.storage_bytes = 64 * 1024;
  CacheCore c(cfg);
  for (int t = 0; t < 64; ++t) {
    const auto r = c.access({t, 0}, 64);
    ASSERT_TRUE(r.inserted);
    materialize(c, r.entry, static_cast<std::uint8_t>(t));
  }
  for (int t = 0; t < 64; ++t) {
    const auto r = c.access({t, 0}, 64);
    ASSERT_EQ(r.type, AccessType::kHit);
    ASSERT_EQ(std::to_integer<int>(c.entry_data(r.entry)[0]), t);
  }
  EXPECT_TRUE(c.validate());
}

TEST(CacheEdge, HugeDisplacementsHashCleanly) {
  Config cfg;
  cfg.mode = Mode::kAlwaysCache;
  cfg.index_entries = 256;
  cfg.storage_bytes = 64 * 1024;
  CacheCore c(cfg);
  // Displacements near 2^48 with power-of-two strides (worst case for a
  // weak hash).
  for (std::uint64_t i = 0; i < 100; ++i) {
    const Key k{3, (std::uint64_t{1} << 47) + (i << 21)};
    const auto r = c.access(k, 128);
    ASSERT_TRUE(r.inserted || r.type == AccessType::kFailing);
    if (r.inserted) materialize(c, r.entry, 9);
  }
  EXPECT_GT(c.cached_entries(), 90u);  // virtually all inserted
  EXPECT_TRUE(c.validate());
}

TEST(CacheEdge, AdversarialSameSlotStreamKeepsInvariants) {
  // Tiny index, arity 2: constant conflict pressure plus capacity churn.
  Config cfg;
  cfg.mode = Mode::kAlwaysCache;
  cfg.index_entries = 16;
  cfg.cuckoo_arity = 2;
  cfg.max_insert_iters = 8;
  cfg.storage_bytes = 2048;
  CacheCore c(cfg);
  clampi::util::Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) {
    const Key k{0, rng.bounded(64) * 128};
    const auto r = c.access(k, 32 + rng.bounded(192));
    if (r.entry != kNoEntry && c.entry_pending(r.entry)) {
      materialize(c, r.entry, 1);
    }
    if (i % 2000 == 0) ASSERT_TRUE(c.validate()) << i;
  }
  EXPECT_GT(c.stats().conflicting + c.stats().failing, 0u);
  EXPECT_TRUE(c.validate());
}

TEST(WindowEdge, TypedLayoutMismatchBypassesCache) {
  Engine e(ecfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    cfg.index_entries = 256;
    cfg.storage_bytes = 64 * 1024;
    auto win = CachedWindow::allocate(p, 4096, &base, cfg);
    auto* bytes = static_cast<std::uint8_t*>(base);
    for (int i = 0; i < 4096; ++i) bytes[i] = static_cast<std::uint8_t>(i * 13 + p.rank());
    p.barrier();
    win.lock_all();
    const int peer = 1 - p.rank();

    // Cache a strided layout at disp 0...
    const auto strided = dt::Datatype::vector(4, 4, 8, dt::Datatype::contiguous(1));
    std::vector<std::uint8_t> a(strided.size_of(1));
    win.get(a.data(), strided, 1, peer, 0);
    win.flush_all();
    // ...then request a *different* layout of the same total size at the
    // same key: the data must still be correct (bypass, not a bogus hit).
    const auto other = dt::Datatype::vector(2, 8, 16, dt::Datatype::contiguous(1));
    ASSERT_EQ(other.size_of(1), strided.size_of(1));
    ASSERT_NE(other.signature(), strided.signature());
    std::vector<std::uint8_t> b(other.size_of(1));
    win.get(b.data(), other, 1, peer, 0);
    win.flush_all();
    std::size_t pos = 0;
    for (const auto& blk : other.flatten(1)) {
      for (std::size_t i = 0; i < blk.size; ++i, ++pos) {
        ASSERT_EQ(b[pos], static_cast<std::uint8_t>((blk.offset + i) * 13 + peer));
      }
    }
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(WindowEdge, InterleavedTargetsWithPerTargetFlush) {
  Engine e(ecfg(4));
  e.run([](Process& p) {
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    auto win = CachedWindow::allocate(p, 1024, &base, cfg);
    auto* b = static_cast<std::uint8_t*>(base);
    for (int i = 0; i < 1024; ++i) b[i] = static_cast<std::uint8_t>(i + p.rank() * 7);
    p.barrier();
    win.lock_all();
    // Issue gets to several targets, flush them one by one out of order.
    std::uint8_t r1[16], r2[16], r3[16];
    const int t1 = (p.rank() + 1) % 4, t2 = (p.rank() + 2) % 4, t3 = (p.rank() + 3) % 4;
    win.get(r1, 16, t1, 0);
    win.get(r2, 16, t2, 32);
    win.get(r3, 16, t3, 64);
    win.flush(t2);
    for (int i = 0; i < 16; ++i) ASSERT_EQ(r2[i], static_cast<std::uint8_t>(32 + i + t2 * 7));
    win.flush(t3);
    win.flush(t1);
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(r1[i], static_cast<std::uint8_t>(0 + i + t1 * 7));
      ASSERT_EQ(r3[i], static_cast<std::uint8_t>(64 + i + t3 * 7));
    }
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(NativeEdge, BlockClampedAtWindowEnd) {
  Engine e(ecfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    const rmasim::Window w = p.win_allocate(1000, &base);  // not block-aligned
    auto* data = static_cast<std::uint8_t*>(base);
    for (int i = 0; i < 1000; ++i) data[i] = static_cast<std::uint8_t>(i ^ 0x5a);
    p.barrier();
    bh::NativeBlockCache cache(p, w, 2048, 256);
    std::uint8_t buf[100];
    cache.get(buf, 100, 1 - p.rank(), 900);  // block [768,1024) exceeds window
    for (int i = 0; i < 100; ++i) ASSERT_EQ(buf[i], static_cast<std::uint8_t>((900 + i) ^ 0x5a));
    p.barrier();
    p.win_free(w);
  });
}

TEST(WindowEdge, StatsBytesAccounting) {
  Engine e(ecfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    auto win = CachedWindow::allocate(p, 4096, &base, cfg);
    p.barrier();
    win.lock_all();
    std::vector<std::uint8_t> buf(512);
    win.get(buf.data(), 512, 1 - p.rank(), 0);  // miss: 512 from network
    win.flush_all();
    win.get(buf.data(), 512, 1 - p.rank(), 0);  // hit: 512 from cache
    win.get(buf.data(), 256, 1 - p.rank(), 0);  // hit: 256 from cache
    EXPECT_EQ(win.stats().bytes_from_network, 512u);
    EXPECT_EQ(win.stats().bytes_from_cache, 768u);
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

}  // namespace
