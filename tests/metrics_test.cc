// Tests for the LibLSB-style measurement statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "metrics/quantile.h"
#include "metrics/sliding_window.h"
#include "metrics/stats.h"
#include "util/rng.h"

namespace {

using clampi::metrics::Histogram;
using clampi::metrics::RepetitionController;
using clampi::metrics::SlidingWindowCounter;
using clampi::metrics::Summary;
using clampi::metrics::summarize;

TEST(Summarize, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).n, 0u);
  const Summary s = summarize({42.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(Summarize, OddAndEvenMedians) {
  EXPECT_DOUBLE_EQ(summarize({3, 1, 2}).median, 2.0);
  EXPECT_DOUBLE_EQ(summarize({4, 1, 2, 3}).median, 2.5);
}

TEST(Summarize, MeanMinMax) {
  const Summary s = summarize({1, 2, 3, 4, 10});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(Summarize, CiBracketsMedian) {
  clampi::util::Xoshiro256 rng(9);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(100.0 + rng.uniform() * 10.0);
  const Summary s = summarize(v);
  EXPECT_LE(s.ci_lo, s.median);
  EXPECT_GE(s.ci_hi, s.median);
  EXPECT_GE(s.ci_lo, s.min);
  EXPECT_LE(s.ci_hi, s.max);
}

TEST(Summarize, CiShrinksWithSampleCount) {
  clampi::util::Xoshiro256 rng(10);
  auto rel_width = [&rng](int n) {
    std::vector<double> v;
    for (int i = 0; i < n; ++i) v.push_back(50.0 + rng.uniform() * 20.0);
    return summarize(v).ci_rel_width();
  };
  EXPECT_LT(rel_width(4000), rel_width(40));
}

TEST(RepetitionController, StopsWhenTight) {
  RepetitionController rc;
  // Identical samples: CI width 0 -> done as soon as min_reps reached.
  for (int i = 0; i < 20; ++i) {
    const bool expect_done = i >= 9;
    EXPECT_EQ(rc.done(), expect_done) << "after " << i << " samples";
    rc.add(5.0);
  }
  EXPECT_TRUE(rc.done());
}

TEST(RepetitionController, CapsAtMaxReps) {
  RepetitionController::Config cfg;
  cfg.max_reps = 50;
  cfg.rel_width = 1e-12;  // practically unreachable for noisy data
  RepetitionController rc(cfg);
  clampi::util::Xoshiro256 rng(11);
  while (!rc.done()) rc.add(rng.uniform() * 100.0);
  EXPECT_EQ(rc.samples().size(), 50u);
}

TEST(RepetitionController, PaperStoppingRule) {
  // The paper: 95% CI within 5% of the reported median. Feed mildly noisy
  // samples and check the rule terminates well before the cap.
  RepetitionController rc;
  clampi::util::Xoshiro256 rng(12);
  while (!rc.done()) rc.add(100.0 + rng.uniform() * 8.0);
  EXPECT_LT(rc.samples().size(), 2000u);
  EXPECT_LE(rc.summary().ci_rel_width(), 0.05);
}

TEST(Histogram, BinningAndTotals) {
  Histogram h(10.0);
  h.add(0.0);
  h.add(9.99);
  h.add(10.0);
  h.add(25.0);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_DOUBLE_EQ(bins[0].first, 0.0);
  EXPECT_EQ(bins[0].second, 2u);
  EXPECT_DOUBLE_EQ(bins[1].first, 10.0);
  EXPECT_EQ(bins[1].second, 1u);
  EXPECT_DOUBLE_EQ(bins[2].first, 20.0);
  EXPECT_EQ(bins[2].second, 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, SkipsEmptyBins) {
  Histogram h(1.0);
  h.add(0.5);
  h.add(100.5);
  EXPECT_EQ(h.bins().size(), 2u);
}

TEST(SlidingWindowCounter, CountsOnlyTrailingWindow) {
  SlidingWindowCounter w(100.0);
  w.add(0.0);
  w.add(50.0);
  w.add(90.0);
  EXPECT_EQ(w.count(90.0), 3u);
  // Events at exactly now - window fall out (window is half-open).
  EXPECT_EQ(w.count(100.0), 2u);
  EXPECT_EQ(w.count(149.0), 2u);
  EXPECT_EQ(w.count(151.0), 1u);
  EXPECT_EQ(w.count(500.0), 0u);
}

TEST(SlidingWindowCounter, AddPrunesLazily) {
  SlidingWindowCounter w(10.0);
  for (int i = 0; i < 1000; ++i) w.add(static_cast<double>(i));
  // Only the trailing 10 us survive no matter how many were recorded.
  EXPECT_EQ(w.count(999.0), 10u);
  w.clear();
  EXPECT_EQ(w.count(999.0), 0u);
  EXPECT_DOUBLE_EQ(w.window_us(), 10.0);
}

// --- P² quantile estimator (docs/FAULTS.md §8) ---

using clampi::metrics::P2Quantile;
using clampi::metrics::QuantileEstimator;

double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())) - 1.0);
  return v[std::min(idx, v.size() - 1)];
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile est(0.5);
  EXPECT_DOUBLE_EQ(est.quantile(), 0.0);  // empty: defined, not NaN
  est.add(30.0);
  EXPECT_DOUBLE_EQ(est.quantile(), 30.0);
  est.add(10.0);
  est.add(20.0);
  EXPECT_DOUBLE_EQ(est.quantile(), 20.0);  // nearest-rank of {10,20,30}
  est.add(5.0);
  EXPECT_DOUBLE_EQ(est.quantile(), 10.0);  // {5,10,20,30}: rank ceil(2)-1
}

TEST(P2Quantile, TracksUniformDistribution) {
  clampi::util::Xoshiro256 rng(77);
  for (const double q : {0.5, 0.9, 0.99}) {
    P2Quantile est(q);
    std::vector<double> v;
    for (int i = 0; i < 5000; ++i) {
      const double x = 100.0 + rng.uniform() * 900.0;
      v.push_back(x);
      est.add(x);
    }
    const double exact = exact_quantile(v, q);
    // P² is an estimate; on a smooth distribution it lands within a few
    // percent of the exact order statistic.
    EXPECT_NEAR(est.quantile(), exact, 0.05 * exact) << "q=" << q;
  }
}

TEST(P2Quantile, TracksZipfSpacedDistribution) {
  // Heavy-tailed spacing like the KV workload's popularity skew: values
  // 1/k^s so the mass piles up near the small end.
  clampi::util::Xoshiro256 rng(78);
  P2Quantile est(0.9);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) {
    const double k = 1.0 + static_cast<double>(rng.bounded(1000));
    const double x = 1e6 / std::pow(k, 1.2);
    v.push_back(x);
    est.add(x);
  }
  const double exact = exact_quantile(v, 0.9);
  EXPECT_NEAR(est.quantile(), exact, 0.15 * exact);
}

TEST(P2Quantile, TracksBimodalStragglerMix) {
  // 90% fast ops near 100us, 10% straggled near 3000us — the regime the
  // hedge threshold must get right: p50 stays in the fast mode, p99 in
  // the slow one.
  clampi::util::Xoshiro256 rng(79);
  P2Quantile p50(0.5);
  P2Quantile p99(0.99);
  for (int i = 0; i < 20000; ++i) {
    const bool slow = rng.bounded(10) == 0;
    const double x = (slow ? 3000.0 : 100.0) + rng.uniform() * 20.0;
    p50.add(x);
    p99.add(x);
  }
  EXPECT_GT(p50.quantile(), 90.0);
  EXPECT_LT(p50.quantile(), 200.0);
  EXPECT_GT(p99.quantile(), 2500.0);
  EXPECT_LT(p99.quantile(), 3100.0);
}

TEST(QuantileEstimator, WindowDecayForgetsAStragglerEpoch) {
  // Straggled samples fill one window; after two clean windows the
  // estimate must be back in the fast mode — this is what re-arms hedging
  // right after an epoch of slowness ends.
  QuantileEstimator est(0.9, 1000.0);
  double now = 0.0;
  for (int i = 0; i < 100; ++i) est.add(5000.0, now += 5.0);
  EXPECT_GT(est.quantile(), 4000.0);
  for (int i = 0; i < 400; ++i) est.add(100.0, now += 5.0);
  EXPECT_LT(est.quantile(), 200.0);
  EXPECT_EQ(est.samples(), 500u);  // lifetime count never resets
}

TEST(QuantileEstimator, IdleGapDropsTheStaleWindow) {
  QuantileEstimator est(0.9, 1000.0);
  for (int i = 0; i < 50; ++i) est.add(5000.0, 10.0 * i);
  // A gap of two-plus windows: the stale straggled estimate is dropped
  // rather than aged forward as "previous".
  est.add(100.0, 10000.0);
  est.add(110.0, 10001.0);
  EXPECT_LT(est.quantile(), 200.0);
}

TEST(QuantileEstimator, WarmingWindowFallsBackToPrevious) {
  QuantileEstimator est(0.5, 1000.0);
  double now = 0.0;
  for (int i = 0; i < 100; ++i) est.add(500.0, now += 5.0);
  // Roll into a fresh window with too few samples to trust: the previous
  // window's estimate answers.
  est.add(9000.0, now + 1000.0);
  EXPECT_NEAR(est.quantile(), 500.0, 50.0);
}

}  // namespace
