// Tests for I_w: the cuckoo hash index (Sec. III-C1).
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "clampi/cuckoo_index.h"
#include "util/rng.h"

namespace {

using clampi::CuckooIndex;
using clampi::kNoEntry;

/// Test harness: entries are (id -> key) pairs in a plain vector.
struct TestOps {
  std::vector<std::uint64_t> keys;
  std::uint64_t hash_key(std::uint32_t id) const { return keys[id]; }
};

struct Fixture {
  TestOps ops;
  CuckooIndex<TestOps> index;

  explicit Fixture(std::size_t nslots, int arity = 4, int iters = 64,
                   std::uint64_t seed = 42)
      : index(nslots, arity, iters, seed, &ops) {}

  std::uint32_t add(std::uint64_t key) {
    ops.keys.push_back(key);
    return static_cast<std::uint32_t>(ops.keys.size() - 1);
  }

  std::uint32_t find(std::uint64_t key) const {
    return index.lookup(key, [&](std::uint32_t id) { return ops.keys[id] == key; });
  }
};

TEST(Cuckoo, InsertAndLookup) {
  Fixture f(64);
  const auto a = f.add(111);
  const auto b = f.add(222);
  EXPECT_TRUE(f.index.insert(111, a, nullptr));
  EXPECT_TRUE(f.index.insert(222, b, nullptr));
  EXPECT_EQ(f.find(111), a);
  EXPECT_EQ(f.find(222), b);
  EXPECT_EQ(f.find(333), kNoEntry);
  EXPECT_EQ(f.index.occupied(), 2u);
  EXPECT_TRUE(f.index.validate());
}

TEST(Cuckoo, EraseRemovesOnlyTheTarget) {
  Fixture f(64);
  const auto a = f.add(1);
  const auto b = f.add(2);
  f.index.insert(1, a, nullptr);
  f.index.insert(2, b, nullptr);
  EXPECT_TRUE(f.index.erase(a));
  EXPECT_FALSE(f.index.erase(a));  // already gone
  EXPECT_EQ(f.find(1), kNoEntry);
  EXPECT_EQ(f.find(2), b);
  EXPECT_EQ(f.index.occupied(), 1u);
  EXPECT_TRUE(f.index.validate());
}

TEST(Cuckoo, ClearEmptiesTable) {
  Fixture f(64);
  for (std::uint64_t k = 0; k < 20; ++k) f.index.insert(k * 97, f.add(k * 97), nullptr);
  f.index.clear();
  EXPECT_EQ(f.index.occupied(), 0u);
  EXPECT_EQ(f.find(97), kNoEntry);
  EXPECT_TRUE(f.index.validate());
}

TEST(Cuckoo, KicksResolveCollisionsUntilFull) {
  // With arity 4 and random-walk insertion the table should sustain a high
  // load factor before the first failure (the paper cites ~97% for p=4).
  Fixture f(1024);
  clampi::util::Xoshiro256 rng(7);
  std::size_t inserted = 0;
  while (true) {
    const std::uint64_t key = rng();
    const auto id = f.add(key);
    if (!f.index.insert(key, id, nullptr)) break;
    ++inserted;
  }
  EXPECT_GT(static_cast<double>(inserted) / 1024.0, 0.90);
  EXPECT_TRUE(f.index.validate());
}

TEST(Cuckoo, LowerArityFillsLess) {
  auto fill = [](int arity) {
    Fixture f(1024, arity);
    clampi::util::Xoshiro256 rng(13);
    std::size_t inserted = 0;
    while (true) {
      const std::uint64_t key = rng();
      const auto id = f.add(key);
      if (!f.index.insert(key, id, nullptr)) break;
      ++inserted;
    }
    return static_cast<double>(inserted) / 1024.0;
  };
  const double p2 = fill(2);
  const double p4 = fill(4);
  EXPECT_LT(p2, p4);
  EXPECT_LT(p2, 0.75);  // theory: ~50% for p=2
}

TEST(Cuckoo, FailedInsertRollsBackExactly) {
  Fixture f(16, 2, 8);  // tiny table, low arity: failures come quickly
  clampi::util::Xoshiro256 rng(3);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> present;
  while (true) {
    const std::uint64_t key = rng();
    const auto id = f.add(key);
    std::vector<std::uint32_t> path;
    if (f.index.insert(key, id, &path)) {
      present.emplace_back(key, id);
      continue;
    }
    // Failure: every previously inserted key must still be findable, the
    // new one must not, and the path must name only present entries.
    EXPECT_FALSE(path.empty());
    for (const auto& [k, i] : present) EXPECT_EQ(f.find(k), i);
    EXPECT_EQ(f.find(key), kNoEntry);
    std::unordered_set<std::uint32_t> present_ids;
    for (const auto& [k, i] : present) present_ids.insert(i);
    for (const auto p : path) EXPECT_TRUE(present_ids.count(p)) << "path id " << p;
    EXPECT_TRUE(f.index.validate());
    break;
  }
}

TEST(Cuckoo, EvictingPathEntryEnablesInsert) {
  // The CLaMPI conflicting-access flow: when an insert fails, evicting a
  // path entry should (almost always) let the retry succeed.
  Fixture f(32, 2, 12);
  clampi::util::Xoshiro256 rng(5);
  int conflicts_resolved = 0;
  for (int n = 0; n < 2000 && conflicts_resolved < 5; ++n) {
    const std::uint64_t key = rng();
    const auto id = f.add(key);
    std::vector<std::uint32_t> path;
    if (f.index.insert(key, id, &path)) continue;
    bool inserted = false;
    for (int attempt = 0; attempt < 4 && !inserted; ++attempt) {
      ASSERT_FALSE(path.empty());
      EXPECT_TRUE(f.index.erase(path.front()));
      inserted = f.index.insert(key, id, &path);
    }
    EXPECT_TRUE(inserted);
    if (inserted) ++conflicts_resolved;
    EXPECT_TRUE(f.index.validate());
  }
  EXPECT_EQ(conflicts_resolved, 5);
}

TEST(Cuckoo, RejectsBadGeometry) {
  TestOps ops;
  EXPECT_THROW((CuckooIndex<TestOps>(2, 4, 8, 1, &ops)), clampi::util::ContractError);
  EXPECT_THROW((CuckooIndex<TestOps>(64, 1, 8, 1, &ops)), clampi::util::ContractError);
}

// Property: random insert/erase churn against an unordered_map reference.
class CuckooChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CuckooChurn, MatchesReference) {
  Fixture f(512);
  clampi::util::Xoshiro256 rng(GetParam());
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  for (int step = 0; step < 30000; ++step) {
    const std::uint64_t key = 1 + rng.bounded(600);  // keys collide frequently
    auto it = ref.find(key);
    if (it == ref.end()) {
      const auto id = f.add(key);
      if (f.index.insert(key, id, nullptr)) ref.emplace(key, id);
    } else {
      EXPECT_TRUE(f.index.erase(it->second));
      ref.erase(it);
    }
    if (step % 3000 == 0) {
      ASSERT_TRUE(f.index.validate());
      for (const auto& [k, i] : ref) ASSERT_EQ(f.find(k), i);
    }
  }
  EXPECT_EQ(f.index.occupied(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CuckooChurn, ::testing::Values(1u, 17u, 23u));

}  // namespace
