// chaos shrinker: ddmin over the step program + soundness-preserving
// simplifications. The planted-bug fixture is the satellite acceptance
// check of docs/CHAOS.md — a known cache-semantics bug must shrink to a
// <= 5-step replayable repro, deterministically.
#include <gtest/gtest.h>

#include <cstdint>

#include "chaos/generator.h"
#include "chaos/runner.h"
#include "chaos/schedule.h"
#include "chaos/shrink.h"

namespace clampi::chaos {
namespace {

// A busy always-cache schedule with plenty of removable noise around the
// minimal hit-producing core (get -> flush -> get).
Schedule noisy_fixture() {
  Schedule s;
  s.seed = 4242;
  s.nranks = 3;
  s.window_bytes = 4096;
  s.mode = Mode::kAlwaysCache;
  s.index_entries = 64;
  s.storage_bytes = 4096;
  s.max_retries = 2;
  s.plan.spike_prob = 0.2;
  s.plan.spike_factor = 2.0;
  auto get = [](int t, std::uint64_t d, std::uint64_t b) {
    return Step{Step::Kind::kGet, t, d, b, 0.0};
  };
  auto put = [](int t, std::uint64_t d, std::uint64_t b) {
    return Step{Step::Kind::kPut, t, d, b, 0.0};
  };
  const Step flush_all{Step::Kind::kFlushAll, 0, 0, 0, 0.0};
  const Step compute{Step::Kind::kCompute, 0, 0, 0, 500.0};
  for (int round = 0; round < 6; ++round) {
    s.steps.push_back(get(1, 0, 256));
    s.steps.push_back(get(2, 512, 128));
    s.steps.push_back(put(2, 1024, 64));
    s.steps.push_back(flush_all);
    s.steps.push_back(compute);
    s.steps.push_back(get(1, 0, 256));  // full hit after the flush
  }
  return s;
}

TEST(ChaosShrink, PlantedBugShrinksToTinyRepro) {
  const Schedule input = noisy_fixture();
  Options opt;
  opt.plant_bug = true;
  ASSERT_FALSE(run(input, opt).oracle_ok) << "fixture must fail under mutation";

  const FailFn fails = [&](const Schedule& c) { return !run(c, opt).oracle_ok; };
  const ShrinkResult res = shrink(input, fails);

  // Acceptance bound from ISSUE/docs/CHAOS.md: a planted full-hit bug
  // needs only miss -> flush -> hit, so <= 5 steps.
  EXPECT_LE(res.schedule.steps.size(), 5u);
  EXPECT_LT(res.schedule.steps.size(), input.steps.size());
  EXPECT_GT(res.attempts, 0u);
  // The repro still fails, and replaying it is deterministic.
  EXPECT_FALSE(run(res.schedule, opt).oracle_ok);
  EXPECT_FALSE(run(res.schedule, opt).oracle_ok);
  // Noise perturbations were simplified away.
  EXPECT_EQ(res.schedule.plan.spike_prob, 0.0);
  EXPECT_EQ(res.schedule.max_retries, 0);
}

TEST(ChaosShrink, DeterministicAcrossRuns) {
  const Schedule input = noisy_fixture();
  Options opt;
  opt.plant_bug = true;
  const FailFn fails = [&](const Schedule& c) { return !run(c, opt).oracle_ok; };
  const ShrinkResult a = shrink(input, fails);
  const ShrinkResult b = shrink(input, fails);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.schedule.to_json(), b.schedule.to_json());
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(ChaosShrink, SyntheticPredicateFindsOneStepCore) {
  // Hermetic ddmin check, no runner involved: the "failure" is simply
  // containing a put. The minimum is exactly one step.
  Schedule s = noisy_fixture();
  const FailFn has_put = [](const Schedule& c) {
    for (const Step& st : c.steps) {
      if (st.kind == Step::Kind::kPut) return true;
    }
    return false;
  };
  const ShrinkResult res = shrink(s, has_put);
  ASSERT_EQ(res.schedule.steps.size(), 1u);
  EXPECT_EQ(res.schedule.steps[0].kind, Step::Kind::kPut);
}

TEST(ChaosShrink, SimplificationsPreserveOracleSoundness) {
  // A schedule with stale puts + shadow verify: shrinking against a
  // predicate that keeps stale_put_prob alive must keep shadow-verify
  // alive too (the coupling rule), never producing an unsound candidate.
  Schedule s = generate(0);  // any base; overwrite the coupled knobs
  s.plan.stale_puts(0.5);
  s.plan.fail_prob = {};
  s.plan.target_fail_prob.clear();
  s.plan.death_us.clear();
  s.plan.revive_us.clear();
  s.shadow_verify_every_n = 1;
  const FailFn stale_alive = [](const Schedule& c) {
    return c.plan.stale_put_prob > 0.0;
  };
  const ShrinkResult res = shrink(s, stale_alive);
  EXPECT_GT(res.schedule.plan.stale_put_prob, 0.0);
  EXPECT_EQ(res.schedule.shadow_verify_every_n, 1u);
}

}  // namespace
}  // namespace clampi::chaos
