// Committed chaos corpus (tests/chaos_corpus/*.json): every file must
// match its in-code builder bit-for-bit (no silent drift between the
// emitter and the committed artifact) and replay with zero oracle
// violations. Scenario-specific assertions pin down that each schedule
// still exercises the machinery it was distilled for (docs/CHAOS.md).
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "chaos/corpus.h"
#include "chaos/runner.h"
#include "chaos/schedule.h"

#ifndef CHAOS_CORPUS_DIR
#error "CHAOS_CORPUS_DIR must point at tests/chaos_corpus"
#endif

namespace clampi::chaos {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return in ? out.str() : std::string();
}

std::string corpus_path(const char* name) {
  return std::string(CHAOS_CORPUS_DIR) + "/" + name + ".json";
}

TEST(ChaosCorpus, CommittedFilesMatchBuilders) {
  ASSERT_EQ(corpus().size(), 12u);
  for (const CorpusEntry& e : corpus()) {
    SCOPED_TRACE(e.name);
    const std::string on_disk = read_file(corpus_path(e.name));
    ASSERT_FALSE(on_disk.empty()) << "missing " << corpus_path(e.name)
                                  << " — regenerate with chaos_fuzz --emit-corpus";
    EXPECT_EQ(on_disk, e.build().to_json() + "\n");
  }
}

TEST(ChaosCorpus, EveryEntryReplaysClean) {
  for (const CorpusEntry& e : corpus()) {
    SCOPED_TRACE(e.name);
    const Schedule s = Schedule::from_json(read_file(corpus_path(e.name)));
    EXPECT_EQ(s, e.build());  // the parsed artifact IS the builder's value
    const Outcome out = run(s);
    EXPECT_TRUE(out.completed);
    EXPECT_TRUE(out.oracle_ok) << (out.violations.empty()
                                       ? "(no violation recorded)"
                                       : out.violations.front());
  }
}

TEST(ChaosCorpus, ScenariosExerciseTheirMachinery) {
  std::map<std::string, Outcome> by_name;
  for (const CorpusEntry& e : corpus()) by_name[e.name] = run(e.build());

  // Stale put healed by shadow-verify: at least one mismatch caught and
  // transparently re-served.
  EXPECT_GT(by_name.at("stale_put_shadow_heal").stats.shadow_mismatches, 0u);
  EXPECT_GT(by_name.at("stale_put_shadow_heal").stats.self_heals, 0u);

  // Bit rot under verify_every_n=1: corruption detected, never served.
  EXPECT_GT(by_name.at("breaker_trip").stats.corruption_detected, 0u);

  // Quarantine flapping: the health machine actually quarantined.
  EXPECT_GT(by_name.at("quarantine_flap").stats.health_quarantines, 0u);

  // Degraded reads around a death: cache served bounded-staleness data.
  EXPECT_GT(by_name.at("revive_cycle").degraded_serves +
                by_name.at("revive_cycle").stats.fallback_hits,
            0u);

  // Adaptive resizing mid-run: at least one adjustment happened.
  EXPECT_GT(by_name.at("resize_mid_epoch").stats.adjustments, 0u);

  // Partial-hit chain: extensions were exercised (the seed-6 bug class).
  EXPECT_GT(by_name.at("partial_hit_chain").stats.hits_partial, 0u);

  // Transient storms: faults were injected and absorbed.
  EXPECT_GT(by_name.at("spike_storm").faults +
                by_name.at("spike_storm").stats.retries,
            0u);

  // Crash-restart: the outage failed at least one op, and the run still
  // replayed clean — the post-restart gets observed the wiped window.
  EXPECT_GT(by_name.at("crash_restart_wipe").faults, 0u);
  EXPECT_GT(by_name.at("crash_inflight_epoch").stats.invalidations, 0u);
}

}  // namespace
}  // namespace clampi::chaos
