// Tests for the simulated persistent device layer (src/kv/journal.h):
// record codec round-trips, group-commit sync cadence, torn-tail and
// corrupt-record handling under scan, capacity-forced self-compaction,
// snapshot ping-pong, and the StoreConfig durability validation rules
// (docs/DURABILITY.md).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "kv/journal.h"
#include "kv/store.h"
#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/error.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;

std::vector<std::byte> value_of(std::uint8_t fill, std::size_t len) {
  return std::vector<std::byte>(len, std::byte{fill});
}

TEST(KvJournal, AppendScanRoundTrip) {
  kv::Journal j(/*cap_bytes=*/4096, /*group_commit_n=*/1);
  const auto v1 = value_of(0x11, 32), v2 = value_of(0x22, 48);
  j.append(7, 1, v1.data(), 32);
  j.append(9, 4, v2.data(), 48);
  EXPECT_EQ(j.appends(), 2u);
  EXPECT_EQ(j.bytes(), kv::Journal::record_bytes(32) + kv::Journal::record_bytes(48));

  const auto s = j.scan(/*max_len=*/128);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_TRUE(s.suspect_keys.empty());
  ASSERT_EQ(s.applied.size(), 2u);
  EXPECT_EQ(s.applied[0].key, 7u);
  EXPECT_EQ(s.applied[0].seq, 1u);
  EXPECT_EQ(s.applied[0].len, 32u);
  EXPECT_EQ(std::memcmp(s.applied[0].value, v1.data(), 32), 0);
  EXPECT_EQ(s.applied[1].key, 9u);
  EXPECT_EQ(std::memcmp(s.applied[1].value, v2.data(), 48), 0);
}

TEST(KvJournal, GroupCommitSyncsEveryNth) {
  kv::Journal j(1 << 16, /*group_commit_n=*/4);
  const auto v = value_of(0x5a, 16);
  int syncs = 0;
  for (int i = 0; i < 12; ++i) {
    if (j.append(static_cast<std::uint64_t>(i), 1, v.data(), 16).synced) ++syncs;
  }
  // Every 4th append closes a group commit; durability is per-append
  // regardless (the batching is modelled latency only — journal.h).
  EXPECT_EQ(syncs, 3);
}

TEST(KvJournal, TornTailIsDroppedDurableRecordsSurvive) {
  kv::Journal j(4096, 1);
  const auto v = value_of(0x33, 40);
  j.append(1, 1, v.data(), 40);
  j.append(2, 2, v.data(), 40);
  j.tear(/*garbage_len=*/17, /*seed=*/0xabcdefull);

  const auto s = j.scan(128);
  ASSERT_EQ(s.applied.size(), 2u);  // everything acknowledged survives
  EXPECT_EQ(s.applied[1].key, 2u);
  EXPECT_EQ(s.dropped, 1u);  // the torn tail counts once
  EXPECT_TRUE(s.suspect_keys.empty());
}

TEST(KvJournal, CorruptRecordIsSkippedAndReportedSuspect) {
  kv::Journal j(4096, 1);
  const auto v = value_of(0x44, 32);
  j.append(10, 1, v.data(), 32);
  j.append(11, 1, v.data(), 32);
  j.append(12, 1, v.data(), 32);
  // Bit rot inside the middle record's value bytes: header still parses,
  // checksum fails, scan resynchronizes at the next record.
  const std::size_t rb = kv::Journal::record_bytes(32);
  j.data()[rb + 20] ^= std::byte{0x01};

  const auto s = j.scan(128);
  ASSERT_EQ(s.applied.size(), 2u);
  EXPECT_EQ(s.applied[0].key, 10u);
  EXPECT_EQ(s.applied[1].key, 12u);  // the record AFTER the rot still applies
  EXPECT_EQ(s.dropped, 1u);
  ASSERT_EQ(s.suspect_keys.size(), 1u);
  EXPECT_EQ(s.suspect_keys[0], 11u);  // recovery can pull this from a peer
}

TEST(KvJournal, CorruptLengthFieldResyncsToNextRecord) {
  kv::Journal j(4096, 1);
  const auto v = value_of(0x55, 32);
  j.append(10, 1, v.data(), 32);
  j.append(11, 1, v.data(), 32);
  j.append(12, 1, v.data(), 32);
  // Bit rot in the middle record's LENGTH field: the header no longer
  // parses, so the scan cannot step over it by size — it must probe
  // forward for the next checksum-valid record instead of truncating.
  const std::size_t rb = kv::Journal::record_bytes(32);
  j.data()[rb + 13] ^= std::byte{0x40};  // len byte -> implausible value

  const auto s = j.scan(128);
  ASSERT_EQ(s.applied.size(), 2u);
  EXPECT_EQ(s.applied[0].key, 10u);
  EXPECT_EQ(s.applied[1].key, 12u);  // resynced past the rotted record
  EXPECT_GE(s.dropped, 1u);
}

TEST(KvJournal, CapacityOverflowSelfCompacts) {
  // Room for ~4 records of 64 bytes: rewriting one key must compact, not
  // grow, and the survivor must be the newest record of each key.
  kv::Journal j(4 * kv::Journal::record_bytes(64), 1);
  bool compacted = false;
  for (std::uint32_t seq = 1; seq <= 20; ++seq) {
    const auto v = value_of(static_cast<std::uint8_t>(seq), 64);
    compacted |= j.append(/*key=*/5, seq, v.data(), 64).compacted;
  }
  EXPECT_TRUE(compacted);
  EXPECT_LE(j.bytes(), 4 * kv::Journal::record_bytes(64));  // never grew
  // scan() returns the surviving record *list* (replay dedupes by seq);
  // the newest write must be the last record and nothing newer was lost.
  const auto s = j.scan(128);
  ASSERT_GE(s.applied.size(), 1u);
  EXPECT_EQ(s.applied.back().key, 5u);
  EXPECT_EQ(s.applied.back().seq, 20u);  // last write wins
  EXPECT_EQ(static_cast<std::uint8_t>(s.applied.back().value[0]), 20);
  // An explicit compaction right after leaves exactly the newest record.
  j.compact(128);
  const auto s2 = j.scan(128);
  ASSERT_EQ(s2.applied.size(), 1u);
  EXPECT_EQ(s2.applied[0].seq, 20u);
}

TEST(KvJournal, ExplicitCompactKeepsNewestPerKey) {
  kv::Journal j(1 << 16, 1);
  for (std::uint32_t seq = 1; seq <= 3; ++seq) {
    const auto v = value_of(static_cast<std::uint8_t>(seq), 24);
    j.append(1, seq, v.data(), 24);
    j.append(2, seq, v.data(), 24);
  }
  const std::size_t reclaimed = j.compact(128);
  EXPECT_EQ(reclaimed, 4 * kv::Journal::record_bytes(24));
  const auto s = j.scan(128);
  ASSERT_EQ(s.applied.size(), 2u);
  EXPECT_EQ(s.applied[0].seq, 3u);
  EXPECT_EQ(s.applied[1].seq, 3u);
}

TEST(KvJournal, TruncateDropsEverything) {
  kv::Journal j(4096, 1);
  const auto v = value_of(0x7e, 16);
  j.append(3, 1, v.data(), 16);
  j.truncate();
  EXPECT_EQ(j.bytes(), 0u);
  EXPECT_TRUE(j.scan(128).applied.empty());
}

TEST(KvJournal, OversizedRecordThrows) {
  kv::Journal j(kv::Journal::record_bytes(8), 1);
  const auto v = value_of(0x01, 64);
  EXPECT_THROW(j.append(1, 1, v.data(), 64), util::ContractError);
}

TEST(KvSnapshot, PingPongKeepsNewestValidImage) {
  kv::SnapshotSet snaps;
  EXPECT_EQ(snaps.latest_valid(), nullptr);  // never written

  const auto a = value_of(0xaa, 256), b = value_of(0xbb, 256), c = value_of(0xcc, 256);
  snaps.save(a.data(), a.size(), /*stamp=*/1);
  snaps.save(b.data(), b.size(), /*stamp=*/2);
  snaps.save(c.data(), c.size(), /*stamp=*/3);  // overwrites the slot holding `a`

  std::uint64_t stamp = 0;
  const std::vector<std::byte>* img = snaps.latest_valid(&stamp);
  ASSERT_NE(img, nullptr);
  EXPECT_EQ(stamp, 3u);
  EXPECT_EQ(std::memcmp(img->data(), c.data(), c.size()), 0);
}

// --- StoreConfig durability validation (negative cases) ---

TEST(KvDurabilityConfig, RejectsInvalidDurabilitySettings) {
  Engine::Config ecfg;
  ecfg.nranks = 2;
  ecfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  ecfg.time_policy = rmasim::TimePolicy::kModeled;
  Engine e(ecfg);
  e.run([](Process& p) {
    kv::StoreConfig base;
    base.nkeys = 64;
    base.nservers = 1;
    base.cache.mode = Mode::kUserDefined;
    base.cache.index_entries = 1024;
    base.cache.storage_bytes = 1 << 20;

    {
      kv::StoreConfig cfg = base;
      cfg.group_commit_n = 0;  // division of the sync cadence by zero
      EXPECT_THROW(kv::Store store(p, cfg), util::ContractError);
    }
    {
      kv::StoreConfig cfg = base;
      cfg.snapshot_every_us = -1.0;
      EXPECT_THROW(kv::Store store(p, cfg), util::ContractError);
    }
    {
      kv::StoreConfig cfg = base;
      cfg.journal_sync_us = -0.5;
      EXPECT_THROW(kv::Store store(p, cfg), util::ContractError);
    }
    {
      // A device set sized for the wrong server count.
      kv::StoreConfig cfg = base;
      kv::StoreConfig two = base;
      two.nservers = 2;
      cfg.devices = kv::Store::make_device_set(two);
      EXPECT_THROW(kv::Store store(p, cfg), util::ContractError);
    }
    {
      // A journal that cannot hold even one max-size record.
      kv::StoreConfig cfg = base;
      cfg.journal_cap_bytes = 8;
      cfg.devices = kv::Store::make_device_set(cfg);
      EXPECT_THROW(kv::Store store(p, cfg), util::ContractError);
    }
    p.barrier();
  });
}

}  // namespace
