// Failure-injection tests for the runtime: misuse that must be caught
// loudly (the simulator is a measurement instrument — silent corruption
// would invalidate every result built on it).
#include <gtest/gtest.h>

#include <memory>

#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/error.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;
using rmasim::Window;

Engine::Config ecfg(int nranks) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(1.0, 0.0);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

TEST(ErrorPaths, AllgathervCountMismatch) {
  Engine e(ecfg(2));
  EXPECT_THROW(e.run([](Process& p) {
    char src[4] = {};
    char dst[8] = {};
    const std::size_t counts[] = {4, 4};
    // Rank 1 lies about its contribution size.
    p.allgatherv(src, p.rank() == 1 ? 2 : 4, dst, counts);
  }),
               util::ContractError);
}

TEST(ErrorPaths, MismatchedCollectivesDetected) {
  Engine e(ecfg(2));
  EXPECT_THROW(e.run([](Process& p) {
    if (p.rank() == 0) {
      p.barrier();
    } else {
      double v = 0, r = 0;
      p.allreduce_f64(&v, &r, 1, rmasim::ReduceOp::kSum);
    }
  }),
               util::ContractError);
}

TEST(ErrorPaths, UnlockWithoutLock) {
  Engine e(ecfg(2));
  EXPECT_THROW(e.run([](Process& p) {
    void* base = nullptr;
    const Window w = p.win_allocate(64, &base);
    p.unlock(0, w);
  }),
               util::ContractError);
}

TEST(ErrorPaths, NegativeComputeRejected) {
  Engine e(ecfg(1));
  EXPECT_THROW(e.run([](Process& p) { p.compute_us(-5.0); }), util::ContractError);
}

TEST(ErrorPaths, InvalidWindowHandle) {
  Engine e(ecfg(1));
  EXPECT_THROW(e.run([](Process& p) {
    char c;
    p.get(&c, 1, 0, 0, Window{42});
  }),
               util::ContractError);
}

TEST(ErrorPaths, RunIsSingleShot) {
  Engine e(ecfg(1));
  e.run([](Process&) {});
  EXPECT_THROW(e.run([](Process&) {}), util::ContractError);
}

TEST(ErrorPaths, ExclusiveLockDeadlockAcrossRanksDetected) {
  // Both ranks grab the lock on target 0 and then block in a barrier that
  // can never complete while... actually: rank 1 holds the exclusive lock
  // and exits without unlocking; rank 0 then blocks forever acquiring it.
  // The scheduler must detect the deadlock instead of hanging.
  Engine e(ecfg(2));
  EXPECT_THROW(e.run([](Process& p) {
    void* base = nullptr;
    const Window w = p.win_allocate(64, &base);
    if (p.rank() == 1) {
      p.lock(rmasim::LockType::kExclusive, 0, w);
      // exits holding the lock
    } else {
      p.compute_us(5.0);  // let rank 1 (virtual time 0) take it first
      p.lock(rmasim::LockType::kExclusive, 0, w);
    }
  }),
               util::ContractError);
}

TEST(ErrorPaths, YieldIsSafeNoOpWhenAlone) {
  Engine e(ecfg(1));
  e.run([](Process& p) {
    p.yield();
    p.yield();
    SUCCEED();
  });
}

TEST(ErrorPaths, EngineRejectsBadConfig) {
  Engine::Config cfg;  // no model
  cfg.nranks = 0;
  EXPECT_THROW(Engine e(cfg), util::ContractError);
}

}  // namespace
