// Regression tests for typed gets whose layout differs from what an
// earlier access cached at the same (target, disp) key — including the
// partial-hit-with-extension case, where the entry must not be left
// PENDING forever (it would become unevictable and block invalidation).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "clampi/clampi.h"
#include "netmodel/model.h"
#include "rt/engine.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;

Engine::Config ecfg() {
  Engine::Config cfg;
  cfg.nranks = 2;
  cfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

void fill(void* base, std::size_t n, int rank) {
  auto* b = static_cast<std::uint8_t*>(base);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 11 + rank);
}

std::uint8_t at(std::size_t i, int rank) {
  return static_cast<std::uint8_t>(i * 11 + rank);
}

TEST(TypedMismatch, LargerRequestWithDifferentLayout) {
  // Cache 2 elements of layout A, then request 6 elements of layout B
  // (different signature, different element size) at the same key: the
  // partial-hit extension must resolve cleanly and the data must be
  // correct; afterwards the entry serves layout B.
  Engine e(ecfg());
  e.run([](Process& p) {
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    cfg.index_entries = 64;
    cfg.storage_bytes = 64 * 1024;
    auto win = CachedWindow::allocate(p, 4096, &base, cfg);
    fill(base, 4096, p.rank());
    p.barrier();
    win.lock_all();
    const int peer = 1 - p.rank();

    const auto a = dt::Datatype::vector(2, 4, 8, dt::Datatype::contiguous(1));  // 8B/elem
    const auto b = dt::Datatype::vector(2, 3, 6, dt::Datatype::contiguous(1));  // 6B/elem
    ASSERT_FALSE(a.is_contiguous());
    ASSERT_FALSE(b.is_contiguous());
    ASSERT_NE(a.signature(), b.signature());

    std::vector<std::uint8_t> bufa(a.size_of(1));
    win.get(bufa.data(), a, 1, peer, 0);
    win.flush_all();
    EXPECT_EQ(win.stats().hits_partial, 0u);

    std::vector<std::uint8_t> bufb(b.size_of(6));
    win.get(bufb.data(), b, 6, peer, 0);  // bigger: partial hit, layout mismatch
    win.flush_all();
    // Data correctness: packed layout-B bytes.
    std::size_t pos = 0;
    for (const auto& blk : b.flatten(6)) {
      for (std::size_t i = 0; i < blk.size; ++i, ++pos) {
        ASSERT_EQ(bufb[pos], at(blk.offset + i, peer));
      }
    }
    // No stuck PENDING entries: invalidate must succeed.
    EXPECT_EQ(win.core().pending_entries(), 0u);
    EXPECT_NO_THROW(clampi_invalidate(win));
    EXPECT_TRUE(win.core().validate());

    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(TypedMismatch, RepopulatedEntryServesNewLayout) {
  Engine e(ecfg());
  e.run([](Process& p) {
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    cfg.index_entries = 64;
    cfg.storage_bytes = 64 * 1024;
    auto win = CachedWindow::allocate(p, 4096, &base, cfg);
    fill(base, 4096, p.rank());
    p.barrier();
    win.lock_all();
    const int peer = 1 - p.rank();

    const auto a = dt::Datatype::vector(2, 4, 8, dt::Datatype::contiguous(1));
    const auto b = dt::Datatype::vector(2, 3, 6, dt::Datatype::contiguous(1));
    std::vector<std::uint8_t> buf(b.size_of(8));
    win.get(buf.data(), a, 1, peer, 0);
    win.flush_all();
    win.get(buf.data(), b, 8, peer, 0);  // mismatch + extension + repopulate
    win.flush_all();
    // The entry now holds layout-B packed bytes: a same-layout re-request
    // is a clean full hit with correct data.
    std::vector<std::uint8_t> buf2(b.size_of(8));
    win.get(buf2.data(), b, 8, peer, 0);
    EXPECT_EQ(win.last_access(), AccessType::kHit);
    EXPECT_EQ(std::memcmp(buf2.data(), buf.data(), buf2.size()), 0);

    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

TEST(TypedMismatch, SmallerRequestDifferentLayoutBypasses) {
  Engine e(ecfg());
  e.run([](Process& p) {
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    auto win = CachedWindow::allocate(p, 4096, &base, cfg);
    fill(base, 4096, p.rank());
    p.barrier();
    win.lock_all();
    const int peer = 1 - p.rank();

    const auto a = dt::Datatype::vector(2, 8, 16, dt::Datatype::contiguous(1));    // 16B
    const auto c = dt::Datatype::indexed({1}, {1}, dt::Datatype::contiguous(4));   // 4B at +4
    ASSERT_FALSE(c.is_contiguous());
    std::vector<std::uint8_t> bufa(a.size_of(1));
    win.get(bufa.data(), a, 1, peer, 0);
    win.flush_all();
    std::vector<std::uint8_t> bufc(c.size_of(1));
    win.get(bufc.data(), c, 1, peer, 0);  // smaller, different signature
    win.flush_all();
    std::size_t pos = 0;
    for (const auto& blk : c.flatten(1)) {
      for (std::size_t i = 0; i < blk.size; ++i, ++pos) {
        ASSERT_EQ(bufc[pos], at(blk.offset + i, peer));
      }
    }
    EXPECT_NO_THROW(clampi_invalidate(win));
    win.unlock_all();
    p.barrier();
    win.free_window();
  });
}

}  // namespace
