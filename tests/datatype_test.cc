// Tests for the datatype layer (paper Sec. II-B).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "datatype/datatype.h"
#include "util/error.h"

namespace {

using clampi::dt::Block;
using clampi::dt::Datatype;
using clampi::dt::normalize;

TEST(Normalize, SortsAndMergesAdjacent) {
  auto out = normalize({{8, 4}, {0, 4}, {4, 4}, {20, 2}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Block{0, 12}));
  EXPECT_EQ(out[1], (Block{20, 2}));
}

TEST(Normalize, DropsEmptyBlocks) {
  auto out = normalize({{0, 0}, {4, 2}, {10, 0}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Block{4, 2}));
}

TEST(Normalize, RejectsOverlap) {
  EXPECT_THROW(normalize({{0, 8}, {4, 8}}), clampi::util::ContractError);
}

TEST(Contiguous, SizeExtentBlocks) {
  auto t = Datatype::contiguous(24);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.extent(), 24u);
  EXPECT_TRUE(t.is_contiguous());
  ASSERT_EQ(t.blocks().size(), 1u);
  EXPECT_EQ(t.blocks()[0], (Block{0, 24}));
}

TEST(Contiguous, ZeroSized) {
  auto t = Datatype::contiguous(0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.blocks().empty());
}

TEST(Vector, StridedLayout) {
  // 3 blocks of 2 doubles, stride 4 doubles.
  auto t = Datatype::vector(3, 2, 4, Datatype::contiguous(8));
  EXPECT_EQ(t.size(), 3u * 2u * 8u);
  EXPECT_EQ(t.extent(), (2u * 4u + 2u) * 8u);
  ASSERT_EQ(t.blocks().size(), 3u);
  EXPECT_EQ(t.blocks()[0], (Block{0, 16}));
  EXPECT_EQ(t.blocks()[1], (Block{32, 16}));
  EXPECT_EQ(t.blocks()[2], (Block{64, 16}));
}

TEST(Vector, UnitStrideCollapsesToContiguous) {
  auto t = Datatype::vector(4, 1, 1, Datatype::contiguous(4));
  EXPECT_TRUE(t.is_contiguous());
  EXPECT_EQ(t.size(), 16u);
}

TEST(Indexed, IrregularBlocks) {
  auto t = Datatype::indexed({2, 1}, {0, 5}, Datatype::contiguous(4));
  EXPECT_EQ(t.size(), 12u);
  ASSERT_EQ(t.blocks().size(), 2u);
  EXPECT_EQ(t.blocks()[0], (Block{0, 8}));
  EXPECT_EQ(t.blocks()[1], (Block{20, 4}));
  EXPECT_EQ(t.extent(), 24u);
}

TEST(Structure, HeterogeneousMembers) {
  // struct { double d; char pad[4]; int i[2]; } -> d at 0, ints at 12.
  auto t = Datatype::structure({1, 2}, {0, 12},
                               {Datatype::contiguous(8), Datatype::contiguous(4)});
  EXPECT_EQ(t.size(), 16u);
  ASSERT_EQ(t.blocks().size(), 2u);
  EXPECT_EQ(t.blocks()[0], (Block{0, 8}));
  EXPECT_EQ(t.blocks()[1], (Block{12, 8}));
}

TEST(Flatten, MultipleCountsMergeTouchingBlocks) {
  auto t = Datatype::contiguous(8);
  auto blocks = t.flatten(5);  // 5 adjacent elements merge into one block
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (Block{0, 40}));
}

TEST(Flatten, StridedCountsStaySeparate) {
  auto t = Datatype::vector(2, 1, 2, Datatype::contiguous(4));  // extent 12... blocks at 0,8
  auto blocks = t.flatten(2);
  // element extent is (1*2+1)*4 = 12; blocks: 0,8 then 12,20 -> 8 merges with 12? No:
  // block {8,4} and {12,4} touch, so they merge.
  std::size_t total = 0;
  for (auto& b : blocks) total += b.size;
  EXPECT_EQ(total, t.size_of(2));
}

TEST(PackUnpack, RoundTripVector) {
  auto t = Datatype::vector(4, 2, 3, Datatype::contiguous(4));
  std::vector<std::uint8_t> src(t.extent() * 2);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::uint8_t> packed(t.size_of(2), 0xff);
  t.pack(src.data(), 2, packed.data());

  std::vector<std::uint8_t> dst(src.size(), 0);
  t.unpack(packed.data(), 2, dst.data());
  // Every byte covered by the type must round-trip; gaps stay zero.
  std::size_t covered = 0;
  for (std::size_t c = 0; c < 2; ++c) {
    for (const Block& b : t.blocks()) {
      for (std::size_t i = 0; i < b.size; ++i) {
        const std::size_t off = c * t.extent() + b.offset + i;
        EXPECT_EQ(dst[off], src[off]);
        ++covered;
      }
    }
  }
  EXPECT_EQ(covered, t.size_of(2));
}

TEST(PackUnpack, PackedBytesAreInLayoutOrder) {
  auto t = Datatype::indexed({1, 1}, {2, 0}, Datatype::contiguous(1));
  // normalize sorts by offset: blocks at 0 and 2.
  std::uint8_t src[3] = {10, 11, 12};
  std::uint8_t packed[2] = {0, 0};
  t.pack(src, 1, packed);
  EXPECT_EQ(packed[0], 10);
  EXPECT_EQ(packed[1], 12);
}

TEST(Signature, DistinguishesLayouts) {
  auto a = Datatype::contiguous(16);
  auto b = Datatype::vector(2, 1, 2, Datatype::contiguous(8));
  auto c = Datatype::contiguous(16);
  EXPECT_NE(a.signature(), b.signature());
  EXPECT_EQ(a.signature(), c.signature());
}

TEST(Nested, VectorOfIndexed) {
  auto inner = Datatype::indexed({1}, {1}, Datatype::contiguous(2));  // 2B at off 2, extent 4
  auto outer = Datatype::vector(2, 1, 2, inner);
  EXPECT_EQ(outer.size(), 4u);
  ASSERT_EQ(outer.blocks().size(), 2u);
  EXPECT_EQ(outer.blocks()[0], (Block{2, 2}));
  EXPECT_EQ(outer.blocks()[1], (Block{10, 2}));
}

TEST(SizeOf, MatchesBlocksTimesCount) {
  auto t = Datatype::vector(3, 2, 5, Datatype::contiguous(4));
  EXPECT_EQ(t.size_of(7), 7u * t.size());
}

}  // namespace
