// Sharded concurrent cache core (docs/PERF.md "Sharding").
//
// Covers the three legs of the sharding contract:
//   1. shard boundaries — fingerprint -> shard routing, the shard-encoded
//      entry ids, and the single-shard (cache_shards = 1) degenerate case;
//   2. cross-shard maintenance — invalidate_overlap / invalidate / scrub /
//      audit spanning every shard, with the cross_shard_ops counter;
//   3. an 8-thread differential hammer: each thread drives its own key
//      set (the same-key external-serialization contract) against a
//      per-key sequential shadow model, with a concurrent auditor taking
//      all shard locks, under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "clampi/cache.h"
#include "clampi/config.h"

namespace {

using namespace clampi;

Config sharded_config(std::size_t shards) {
  Config cfg;
  cfg.cache_shards = shards;
  cfg.index_entries = 1024;
  cfg.storage_bytes = std::size_t{256} << 10;
  return cfg;
}

/// Deterministic payload: every byte of `key`'s value is a function of the
/// key and the offset, so a served prefix is checkable at any length
/// without tracking what was written when.
std::byte pattern_byte(Key key, std::size_t off) {
  const auto v = static_cast<std::uint64_t>(key.target) * 0x9e3779b97f4a7c15ull +
                 key.disp * 0xbf58476d1ce4e5b9ull + off;
  return static_cast<std::byte>((v ^ (v >> 17)) & 0xff);
}

void fill_pattern(std::byte* dst, Key key, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) dst[i] = pattern_byte(key, i);
}

bool check_pattern(const std::byte* got, Key key, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    if (got[i] != pattern_byte(key, i)) return false;
  }
  return true;
}

/// Miss-path completion: fill the pending entry with the key's pattern and
/// seal it, standing in for the network copy-in the window driver does.
void complete(CacheCore& core, const CacheCore::Result& r, Key key) {
  if (r.entry == kNoEntry || (!r.inserted && !r.extended)) return;
  fill_pattern(core.entry_data(r.entry), key, core.entry_bytes(r.entry));
  core.mark_cached(r.entry);
}

TEST(ShardBoundary, RoutingMatchesEntryEncoding) {
  CacheCore core(sharded_config(8));
  ASSERT_EQ(core.shards(), 8u);
  std::set<std::size_t> seen;
  for (int t = 0; t < 4; ++t) {
    for (std::uint64_t d = 0; d < 64; ++d) {
      const Key key{t, d * 64};
      const std::size_t shard = core.shard_of(key);
      ASSERT_LT(shard, core.shards());
      seen.insert(shard);
      const auto r = core.access(key, 64);
      ASSERT_NE(r.entry, kNoEntry);
      // Entry ids carry their shard in the low bits — the decode the
      // whole sharded core hangs off.
      EXPECT_EQ(r.entry & (core.shards() - 1), shard);
      complete(core, r, key);
    }
  }
  // 256 SplitMix-spread keys across 8 shards: every shard gets traffic.
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_TRUE(core.validate());
}

TEST(ShardBoundary, SingleShardIsTheIdentityEncoding) {
  CacheCore core(sharded_config(1));
  ASSERT_EQ(core.shards(), 1u);
  // With one shard every key routes to shard 0 and ids are the dense
  // pre-sharding allocation order: 0, 1, 2, ...
  for (std::uint32_t i = 0; i < 32; ++i) {
    const Key key{1, std::uint64_t{i} * 64};
    EXPECT_EQ(core.shard_of(key), 0u);
    const auto r = core.access(key, 64);
    ASSERT_TRUE(r.inserted);
    EXPECT_EQ(r.entry, i);
    complete(core, r, key);
  }
  // Single-shard stats are bit-exact with the pre-sharding cache: no
  // cross-shard operations can ever be counted.
  core.invalidate();
  (void)core.audit();
  (void)core.scrub(64);
  EXPECT_EQ(core.stats().cross_shard_ops, 0u);
}

TEST(ShardBoundary, DeterministicAcrossInstances) {
  // Two cores with the same config replay the same op stream identically
  // — shard seeding is pure config (no global state, no addresses).
  CacheCore a(sharded_config(4));
  CacheCore b(sharded_config(4));
  for (std::uint64_t i = 0; i < 512; ++i) {
    const Key key{static_cast<std::int32_t>(i % 3), (i * 192) % 8192};
    const std::size_t bytes = 32 + (i % 7) * 48;
    const auto ra = a.access(key, bytes);
    const auto rb = b.access(key, bytes);
    EXPECT_EQ(ra.type, rb.type) << i;
    EXPECT_EQ(ra.entry, rb.entry) << i;
    EXPECT_EQ(ra.cached_bytes, rb.cached_bytes) << i;
    complete(a, ra, key);
    complete(b, rb, key);
  }
  EXPECT_EQ(a.stats().hits_full, b.stats().hits_full);
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
  EXPECT_EQ(a.cached_entries(), b.cached_entries());
}

TEST(CrossShard, InvalidateOverlapSpansShards) {
  CacheCore core(sharded_config(4));
  const int target = 1;
  std::set<std::size_t> shards_hit;
  std::size_t live = 0;
  for (std::uint64_t d = 0; d < 48; ++d) {
    const Key key{target, d * 64};
    shards_hit.insert(core.shard_of(key));
    const auto r = core.access(key, 64);
    if (r.inserted) {
      complete(core, r, key);
      ++live;
    }
  }
  ASSERT_GT(shards_hit.size(), 1u) << "keys must span shards for this test";
  ASSERT_EQ(core.cached_entries(), live);
  // One overlapping put covering the whole range: every cached entry for
  // the target drops, no matter which shard holds it.
  const std::size_t dropped = core.invalidate_overlap(target, 0, 48 * 64);
  EXPECT_EQ(dropped, live);
  EXPECT_EQ(core.cached_entries(), 0u);
  for (std::uint64_t d = 0; d < 48; ++d) {
    EXPECT_EQ(core.find_cached(Key{target, d * 64}), kNoEntry);
  }
  const Stats& st = core.stats();
  EXPECT_EQ(st.put_invalidations, dropped);
  EXPECT_GE(st.cross_shard_ops, 1u);
  EXPECT_TRUE(core.validate());
}

TEST(CrossShard, ScrubWalksEveryShard) {
  Config cfg = sharded_config(4);
  cfg.scrub_entries_per_epoch = 16;  // integrity on: checksums maintained
  CacheCore core(cfg);
  std::size_t live = 0;
  for (std::uint64_t d = 0; d < 64; ++d) {
    const Key key{0, d * 96};
    const auto r = core.access(key, 96);
    if (r.inserted) {
      complete(core, r, key);
      ++live;
    }
  }
  // One big slice visits every live entry across all four shards.
  const auto rep = core.scrub(4096);
  EXPECT_EQ(rep.scanned, live);
  EXPECT_TRUE(rep.invariants_ok);
  EXPECT_EQ(rep.corrupted, 0u);
  // Small slices resume across shard boundaries and cover everything too.
  std::size_t scanned = 0;
  for (int i = 0; i < 16; ++i) scanned += core.scrub(8).scanned;
  EXPECT_GE(scanned, live);
  EXPECT_GE(core.stats().cross_shard_ops, 1u);
}

TEST(CrossShard, AuditChecksPartitionInvariants) {
  CacheCore core(sharded_config(8));
  for (std::uint64_t d = 0; d < 32; ++d) {
    const Key key{2, d * 128};
    complete(core, core.access(key, 128), key);
  }
  const auto rep = core.audit();
  EXPECT_TRUE(rep.ok) << rep.detail;
  EXPECT_TRUE(rep.detail.empty());
  EXPECT_EQ(rep.live, core.cached_entries());
  // Resize keeps the per-shard partition grid (rounds to a multiple of
  // the shard count) and audits clean afterwards.
  core.resize(2048, std::size_t{128} << 10);
  EXPECT_EQ(core.index_entries() % core.shards(), 0u);
  EXPECT_TRUE(core.audit().ok);
}

// --- the 8-thread differential hammer ---------------------------------
//
// Each thread owns a disjoint key set (same-key operations externally
// serialized, per the CacheCore contract) and checks every served prefix
// against the per-key pattern model. A parallel auditor exercises the
// all-locks path while accesses are in flight. Run under TSan in CI.
TEST(ConcurrentHammer, EightThreadsWithShadowModel) {
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 48;
  constexpr int kOpsPerThread = 4000;
  constexpr std::size_t kMaxBytes = 256;

  Config cfg = sharded_config(16);
  CacheCore core(cfg);

  std::atomic<std::uint64_t> serves{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<bool> stop_audit{false};

  std::thread auditor([&] {
    while (!stop_audit.load(std::memory_order_relaxed)) {
      const auto rep = core.audit();
      if (!rep.ok) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::byte buf[kMaxBytes];
      std::uint64_t rng = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(t + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const int k = static_cast<int>((rng >> 33) % kKeysPerThread);
        // Disjoint ownership: thread t's keys live at displacements only
        // it ever touches.
        const Key key{t % 4,
                      (static_cast<std::uint64_t>(t) * kKeysPerThread +
                       static_cast<std::uint64_t>(k)) *
                          1024};
        // Two sizes per key: the larger one forces partial hits and
        // extension/relocation under the shard lock.
        const std::size_t bytes = ((rng >> 20) & 1) ? kMaxBytes : kMaxBytes / 2;
        const auto r = core.access_read(key, bytes, buf);
        if (r.serve_now && r.cached_bytes > 0) {
          serves.fetch_add(1, std::memory_order_relaxed);
          if (!check_pattern(buf, key, r.cached_bytes)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (r.entry != kNoEntry && (r.inserted || r.extended)) {
          // Our pending entry: no other thread can evict or move it.
          fill_pattern(core.entry_data(r.entry), key, core.entry_bytes(r.entry));
          core.mark_cached(r.entry);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop_audit.store(true, std::memory_order_relaxed);
  auditor.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(serves.load(), 0u);

  // Quiescent: aggregate and cross-check the sharded counters.
  const Stats& st = core.stats();
  EXPECT_EQ(st.total_gets,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(st.hitting() + st.direct + st.conflicting + st.capacity + st.failing,
            st.total_gets);
  // Every access took its shard lock (plus the entry fills/seals).
  EXPECT_GE(st.shard_lock_acquisitions, st.total_gets);
  EXPECT_LE(st.shard_lock_contended, st.shard_lock_acquisitions);
  EXPECT_EQ(core.pending_entries(), 0u);
  const auto rep = core.audit();
  EXPECT_TRUE(rep.ok) << rep.detail;
}

TEST(ConcurrentHammer, SingleThreadNeverContends) {
  CacheCore core(sharded_config(4));
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const Key key{0, (i % 128) * 256};
    const auto r = core.access(key, 128);
    complete(core, r, key);
  }
  const Stats& st = core.stats();
  EXPECT_GT(st.shard_lock_acquisitions, 0u);
  EXPECT_EQ(st.shard_lock_contended, 0u);
}

}  // namespace
