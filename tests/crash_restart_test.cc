// Crash-restart durability, bottom-up (docs/DURABILITY.md, docs/FAULTS.md
// §9): CrashEpoch validation and injector semantics, the engine's
// wiped-memory restart (lazy zero of the rank's window segment), the
// CLaMPI cache sweep that keeps restarts transparent to cached readers
// (crash_epoch_check / Stats::crash_invalidations), and the full kv
// recovery protocol end to end — snapshot restore, checksum-verified
// journal replay, torn-tail discard — with zero acknowledged-write loss.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "clampi/clampi.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "kv/store.h"
#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/error.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;

Engine::Config engine_cfg(int nranks,
                          std::shared_ptr<fault::Injector> inj = nullptr) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  cfg.injector = std::move(inj);
  return cfg;
}

void advance_to(Process& p, double t_us) {
  if (p.now_us() < t_us) p.compute_us(t_us - p.now_us());
}

// --- Injector semantics ---

TEST(CrashInjector, RejectsMalformedCrashPlans) {
  {
    fault::Plan p;
    p.crash_rank(1, 100.0, 100.0);  // restart must come strictly after
    EXPECT_THROW(fault::Injector inj(p), util::ContractError);
  }
  {
    fault::Plan p;
    p.crash_rank(1, 100.0, 500.0);
    p.crash_rank(1, 400.0, 900.0);  // overlapping epochs of one rank
    EXPECT_THROW(fault::Injector inj(p), util::ContractError);
  }
  {
    fault::Plan p;
    p.crashes.push_back({-1, 100.0, 200.0});
    EXPECT_THROW(fault::Injector inj(p), util::ContractError);
  }
  {
    fault::Plan p;
    p.torn_write_prob = 1.5;  // probabilities stay in [0,1]
    EXPECT_THROW(fault::Injector inj(p), util::ContractError);
  }
}

TEST(CrashInjector, OutageWindowAndRestartCounting) {
  fault::Plan p;
  p.crash_rank(1, 1000.0, 2000.0);
  p.crash_rank(1, 3000.0, 4000.0);  // a rank may crash repeatedly
  fault::Injector inj(p);

  // dead() covers [at_us, restart_us) per epoch, nothing else.
  EXPECT_FALSE(inj.dead(1, 500.0));
  EXPECT_TRUE(inj.dead(1, 1000.0));
  EXPECT_TRUE(inj.dead(1, 1999.0));
  EXPECT_FALSE(inj.dead(1, 2000.0));  // restart instant: alive (and wiped)
  EXPECT_TRUE(inj.dead(1, 3500.0));
  EXPECT_FALSE(inj.dead(1, 4500.0));
  EXPECT_FALSE(inj.dead(0, 1500.0));  // other ranks untouched

  EXPECT_EQ(inj.restarts_due(1, 1500.0), 0);  // mid-outage: not yet due
  EXPECT_EQ(inj.restarts_due(1, 2000.0), 1);
  EXPECT_EQ(inj.restarts_due(1, 3500.0), 1);
  EXPECT_EQ(inj.restarts_due(1, 4000.0), 2);
  EXPECT_EQ(inj.restarts_due(0, 9999.0), 0);
}

TEST(CrashInjector, PersistenceFaultDrawsAreDeterministic) {
  fault::Plan p;
  p.seed = 42;
  p.crash_rank(1, 1000.0, 2000.0);
  p.torn_writes(1.0);
  fault::Injector a(p), b(p);
  EXPECT_TRUE(a.torn_write(1, 0));  // prob 1: always torn
  EXPECT_EQ(a.torn_write(1, 0), b.torn_write(1, 0));
  // Garbage length is small, non-zero, and a pure function of
  // (seed, rank, crash_idx) — replays must tear identically.
  const std::size_t len = a.torn_garbage_len(1, 0);
  EXPECT_GE(len, 8u);
  EXPECT_LT(len, 64u);
  EXPECT_EQ(len, b.torn_garbage_len(1, 0));

  fault::Plan q = p;
  q.torn_writes(0.0);
  fault::Injector c(q);
  EXPECT_FALSE(c.torn_write(1, 0));
}

// --- Engine: wiped-memory restart ---

TEST(CrashRestart, EngineWipesWindowMemoryLazilyAtRestart) {
  fault::Plan plan;
  plan.crash_rank(1, 5000.0, 10000.0);
  Engine e(engine_cfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([](Process& p) {
    void* base = nullptr;
    auto w = p.win_allocate(256, &base);
    std::memset(base, p.rank() == 1 ? 0x5a : 0x11, 256);
    p.barrier();
    if (p.rank() == 0) {
      p.lock_all(w);
      std::vector<std::uint8_t> buf(64, 0);
      p.get(buf.data(), 64, 1, 0, w);
      p.flush(1, w);
      EXPECT_EQ(buf[0], 0x5a);  // pre-crash contents intact

      advance_to(p, 6000.0);  // inside the outage: the rank is silent
      EXPECT_THROW(
          {
            p.get(buf.data(), 64, 1, 0, w);
            p.flush(1, w);
          },
          fault::OpFailedError);

      advance_to(p, 11000.0);  // past the restart instant
      EXPECT_EQ(p.crash_restarts_due(1), 1);
      EXPECT_EQ(p.crash_wipes_applied(1), 0);  // wipe is lazy: not yet
      p.get(buf.data(), 64, 1, 0, w);
      p.flush(1, w);
      EXPECT_EQ(p.crash_wipes_applied(1), 1);  // first op folded it in
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(buf[static_cast<std::size_t>(i)], 0) << "byte " << i;
      }
      p.unlock_all(w);
    }
    p.barrier();
    p.win_free(w);
  });
}

// --- CLaMPI: cached entries must not survive a target's restart ---

TEST(CrashRestart, CachedWindowInvalidatesEntriesOfRestartedTarget) {
  fault::Plan plan;
  plan.crash_rank(1, 5000.0, 10000.0);
  Engine e(engine_cfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([](Process& p) {
    Config ccfg;
    ccfg.mode = Mode::kUserDefined;  // cache survives flushes by design
    ccfg.index_entries = 512;
    ccfg.storage_bytes = 256 * 1024;
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    std::memset(base, p.rank() == 1 ? 0x77 : 0x22, 4096);
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64, 0);
      win.get(buf.data(), 64, 1, 0);
      win.flush_all();
      win.get(buf.data(), 64, 1, 0);  // second read: a cache hit
      EXPECT_EQ(buf[0], 0x77);
      EXPECT_GE(win.stats().hits_full, 1u);

      // Past the restart the entry holds bytes from a memory image that
      // no longer exists; crash_epoch_check must quarantine it so the
      // read refetches the (zeroed) post-restart memory.
      advance_to(p, 11000.0);
      win.get(buf.data(), 64, 1, 0);
      win.flush_all();
      EXPECT_GE(win.stats().crash_invalidations, 1u);
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(buf[static_cast<std::size_t>(i)], 0) << "byte " << i;
      }
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

// --- KV: the full recovery protocol, end to end ---

/// 2 servers + 1 client, replication 1 (so the journal is the ONLY copy
/// of server 1's acknowledged writes), every crash leaves a torn tail.
kv::StoreConfig durable_cfg(std::uint64_t nkeys) {
  kv::StoreConfig cfg;
  cfg.nkeys = nkeys;
  cfg.nservers = 2;
  cfg.replication = 1;
  cfg.cache.mode = Mode::kUserDefined;
  cfg.cache.index_entries = 4096;
  cfg.cache.storage_bytes = 8 << 20;
  cfg.group_commit_n = 4;
  return cfg;
}

/// Out-params recorded by the crashed server after its recovery ran
/// (plain values: the phases are separated by barriers).
struct ServerProbe {
  std::uint64_t replayed = 0;
  std::uint64_t torn_dropped = 0;
  std::uint64_t snapshot_loads = 0;
  int restarts_handled = 0;
};

/// Phase structure shared by the e2e tests. rmasim's baton scheduler only
/// switches ranks at sync points (compute_us does not yield), so the
/// server's tick loop is TIME-bounded and the phases meet at barriers:
///   write phase:  client writes `rounds` acked rounds, servers wait
///   outage phase: servers tick crash_tick to `end_us` (server 1 crashes,
///                 restarts and recovers inside its loop), client idles
///   verify phase: client checks every acked write survived
void run_crash_cycle(Process& p, kv::Store& store, const kv::StoreConfig& cfg,
                     std::uint64_t nkeys, std::uint32_t rounds,
                     std::uint32_t vlen, double end_us, ServerProbe* probe) {
  const bool server = p.rank() < cfg.nservers;
  std::vector<std::byte> buf(cfg.layout.value_capacity);
  std::vector<std::uint32_t> acked(nkeys, 0);
  if (!server) {
    store.window().lock_all();
    for (std::uint32_t seq = 1; seq <= rounds; ++seq) {
      for (std::uint64_t i = 0; i < nkeys; ++i) {
        const std::uint64_t key = store.key_at(i);
        kv::fill_value(key, seq, vlen, buf.data());
        kv::PutMeta pm;
        if (store.put(key, seq, buf.data(), vlen, &pm) && pm.applied > 0) {
          acked[i] = seq;
        }
      }
    }
    EXPECT_GT(store.window().stats().kv_journal_appends, 0u);
    store.window().unlock_all();
  }
  p.barrier();  // all writes acked, strictly before the crash instant

  if (server) {
    // crash_tick is a no-op until the restart instant passes, then runs
    // the whole recovery protocol synchronously inside one call.
    while (p.now_us() < end_us) {
      p.compute_us(500.0);
      store.crash_tick();
    }
  } else {
    advance_to(p, end_us);
  }
  p.barrier();  // outage over, server 1 recovered

  if (!server) {
    store.window().lock_all();
    store.invalidate_cache();
    std::uint64_t lost = 0;
    for (std::uint64_t i = 0; i < nkeys; ++i) {
      if (acked[i] == 0) continue;
      const std::uint64_t key = store.key_at(i);
      kv::GetMeta gm;
      bool ok = false;
      for (int attempt = 0; attempt < 10 && !ok; ++attempt) {
        ok = store.get_uncached(key, buf.data(), &gm);
        if (!ok) p.compute_us(1000.0);
      }
      ASSERT_TRUE(ok) << "key rank " << i << " unreachable after restart";
      // Served seq below the acked seq, or wrong bytes: an acknowledged
      // write failed to survive the crash.
      if (gm.seq < acked[i] || !kv::check_value(key, gm.seq, gm.len, buf.data())) {
        ++lost;
      }
    }
    EXPECT_EQ(lost, 0u) << "acknowledged writes lost across the crash";
    store.window().unlock_all();
  } else if (p.rank() == 1 && probe != nullptr) {
    const Stats& st = store.window().stats();
    probe->replayed = st.kv_journal_replayed;
    probe->torn_dropped = st.kv_torn_records_dropped;
    probe->snapshot_loads = st.kv_snapshot_loads;
    probe->restarts_handled = store.crash_restarts_handled();
  }
  p.barrier();
  store.free_window();
}

TEST(CrashRestart, KvJournalReplayLosesNoAcknowledgedWrite) {
  const double kCrashUs = 30000.0, kRestartUs = 50000.0;
  const std::uint64_t kKeys = 200;
  fault::Plan plan;
  plan.crash_rank(1, kCrashUs, kRestartUs);
  plan.torn_writes(1.0);
  Engine e(engine_cfg(3, std::make_shared<fault::Injector>(plan)));
  auto probe = std::make_shared<ServerProbe>();
  // ONE device set shared by every rank: the client's journal appends
  // must land on the same simulated platter the server recovers from.
  kv::StoreConfig cfg = durable_cfg(kKeys);
  cfg.devices = kv::Store::make_device_set(cfg);
  e.run([probe, kKeys, kRestartUs, cfg](Process& p) {
    kv::Store store(p, cfg);
    run_crash_cycle(p, store, cfg, kKeys, /*rounds=*/2, /*vlen=*/48,
                    kRestartUs + 2000.0, probe.get());
  });
  EXPECT_GT(probe->replayed, 0u);      // the journal did the work
  EXPECT_GE(probe->torn_dropped, 1u);  // the torn tail was discarded
  EXPECT_EQ(probe->restarts_handled, 1);
}

TEST(CrashRestart, KvSnapshotBoundsReplayAndRestores) {
  // With periodic snapshots the restored image carries the state and
  // replay only covers the tail since the last snapshot.
  const double kCrashUs = 30000.0, kRestartUs = 50000.0;
  const std::uint64_t kKeys = 100;
  fault::Plan plan;
  plan.crash_rank(1, kCrashUs, kRestartUs);
  Engine e(engine_cfg(3, std::make_shared<fault::Injector>(plan)));
  auto probe = std::make_shared<ServerProbe>();
  kv::StoreConfig cfg = durable_cfg(kKeys);
  cfg.snapshot_every_us = 4000.0;  // several snapshot periods pre-crash
  cfg.devices = kv::Store::make_device_set(cfg);
  e.run([probe, kKeys, kRestartUs, cfg](Process& p) {
    kv::Store store(p, cfg);
    run_crash_cycle(p, store, cfg, kKeys, /*rounds=*/1, /*vlen=*/32,
                    kRestartUs + 2000.0, probe.get());
  });
  EXPECT_GE(probe->snapshot_loads, 1u);
  EXPECT_EQ(probe->restarts_handled, 1);
}

}  // namespace
