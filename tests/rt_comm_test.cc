// Tests for sub-communicators: comm_split, comm-scoped collectives,
// windows over sub-communicators (including CLaMPI caching on them).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "clampi/clampi.h"
#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/error.h"

namespace {

using namespace clampi;
using rmasim::Comm;
using rmasim::Engine;
using rmasim::kCommWorld;
using rmasim::Process;
using rmasim::ReduceOp;
using rmasim::Window;

Engine::Config ecfg(int nranks) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

TEST(Comm, WorldBasics) {
  Engine e(ecfg(4));
  e.run([](Process& p) {
    EXPECT_EQ(p.comm_rank(kCommWorld), p.rank());
    EXPECT_EQ(p.comm_size(kCommWorld), 4);
    EXPECT_TRUE(p.comm_member(kCommWorld));
    EXPECT_EQ(p.comm_world_rank(kCommWorld, 2), 2);
  });
}

TEST(Comm, SplitEvenOdd) {
  Engine e(ecfg(6));
  e.run([](Process& p) {
    const Comm c = p.comm_split(kCommWorld, p.rank() % 2, /*key=*/p.rank());
    EXPECT_EQ(p.comm_size(c), 3);
    EXPECT_EQ(p.comm_rank(c), p.rank() / 2);
    EXPECT_EQ(p.comm_world_rank(c, p.comm_rank(c)), p.rank());
    EXPECT_TRUE(p.comm_member(c));
  });
}

TEST(Comm, SplitKeyControlsOrdering) {
  Engine e(ecfg(4));
  e.run([](Process& p) {
    // One color; keys reverse the rank order.
    const Comm c = p.comm_split(kCommWorld, 0, /*key=*/-p.rank());
    EXPECT_EQ(p.comm_size(c), 4);
    EXPECT_EQ(p.comm_rank(c), 3 - p.rank());
  });
}

TEST(Comm, CollectivesScopedToSubcomm) {
  Engine e(ecfg(8));
  e.run([](Process& p) {
    const Comm c = p.comm_split(kCommWorld, p.rank() % 2, p.rank());
    const double v = 1.0 + p.rank();
    double sum = 0.0;
    p.allreduce_f64(&v, &sum, 1, ReduceOp::kSum, c);
    // evens: 1+3+5+7=16; odds: 2+4+6+8=20.
    EXPECT_DOUBLE_EQ(sum, p.rank() % 2 == 0 ? 16.0 : 20.0);

    const std::uint32_t mine = 100u + p.rank();
    std::vector<std::uint32_t> all(4);
    p.allgather(&mine, all.data(), sizeof(mine), c);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(all[i], 100u + (p.rank() % 2) + 2u * i);
    }
    p.barrier(c);
    p.barrier();  // world barrier still works after sub-comm traffic
  });
}

TEST(Comm, ConcurrentCollectivesOnDisjointComms) {
  // Both halves run their own barriers/reductions an unequal number of
  // times — legal because the communicators are disjoint.
  Engine e(ecfg(4));
  e.run([](Process& p) {
    const Comm c = p.comm_split(kCommWorld, p.rank() / 2, p.rank());
    const int reps = p.rank() / 2 == 0 ? 5 : 2;
    std::uint64_t one = 1, total = 0;
    for (int i = 0; i < reps; ++i) {
      p.allreduce_u64(&one, &total, 1, ReduceOp::kSum, c);
      EXPECT_EQ(total, 2u);
      p.barrier(c);
    }
    p.barrier();
  });
}

TEST(Comm, WindowOverSubcommUsesLocalRanks) {
  Engine e(ecfg(6));
  e.run([](Process& p) {
    const Comm c = p.comm_split(kCommWorld, p.rank() % 2, p.rank());
    std::vector<std::uint32_t> mine(8, 1000u * p.rank());
    const Window w = p.win_create(mine.data(), mine.size() * sizeof(std::uint32_t), c);
    EXPECT_EQ(p.win_comm(w).id, c.id);
    p.barrier(c);
    // Local rank l in c corresponds to world rank (color + 2l).
    const int peer_local = (p.comm_rank(c) + 1) % 3;
    const int peer_world = (p.rank() % 2) + 2 * peer_local;
    std::uint32_t got = 0;
    p.get(&got, sizeof(got), peer_local, 0, w);
    p.flush(peer_local, w);
    EXPECT_EQ(got, 1000u * peer_world);
    // Targets beyond the sub-communicator size are rejected.
    EXPECT_THROW(p.get(&got, sizeof(got), 3, 0, w), util::ContractError);
    p.barrier(c);
    p.win_free(w);
    p.barrier();
  });
}

TEST(Comm, FenceOverSubcomm) {
  Engine e(ecfg(4));
  e.run([](Process& p) {
    const Comm c = p.comm_split(kCommWorld, p.rank() % 2, p.rank());
    std::uint64_t val = 7u + p.rank();
    const Window w = p.win_create(&val, sizeof(val), c);
    p.fence(w);
    std::uint64_t got = 0;
    p.get(&got, sizeof(got), 1 - p.comm_rank(c), 0, w);
    p.fence(w);
    const int peer_world = (p.rank() % 2) + 2 * (1 - p.comm_rank(c));
    EXPECT_EQ(got, 7u + static_cast<std::uint64_t>(peer_world));
    p.win_free(w);
    p.barrier();
  });
}

TEST(Comm, AtomicsOverSubcomm) {
  Engine e(ecfg(4));
  e.run([](Process& p) {
    const Comm c = p.comm_split(kCommWorld, p.rank() % 2, p.rank());
    std::int64_t counter = 0;
    const Window w = p.win_create(&counter, sizeof(counter), c);
    p.fence(w);
    const std::int64_t one = 1;
    p.accumulate(&one, 1, rmasim::AccumulateType::kInt64, rmasim::AccumulateOp::kSum,
                 /*target=*/0, 0, w);
    p.fence(w);
    if (p.comm_rank(c) == 0) EXPECT_EQ(counter, 2);  // both halves have 2 members
    p.win_free(w);
    p.barrier();
  });
}

TEST(Comm, ClampiWindowOverSubcomm) {
  Engine e(ecfg(4));
  e.run([](Process& p) {
    const Comm c = p.comm_split(kCommWorld, p.rank() / 2, p.rank());
    std::vector<std::uint8_t> mine(256);
    for (int i = 0; i < 256; ++i) {
      mine[i] = static_cast<std::uint8_t>(i * 3 + p.rank());
    }
    const Window w = p.win_create(mine.data(), mine.size(), c);
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    cfg.index_entries = 64;
    cfg.storage_bytes = 64 * 1024;
    CachedWindow win(p, w, cfg);
    p.barrier(c);
    win.lock_all();
    const int peer_local = 1 - p.comm_rank(c);
    const int peer_world = (p.rank() / 2) * 2 + peer_local;
    std::uint8_t buf[32];
    win.get(buf, 32, peer_local, 16);
    win.flush_all();
    win.get(buf, 32, peer_local, 16);
    EXPECT_EQ(win.last_access(), AccessType::kHit);
    for (int i = 0; i < 32; ++i) {
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>((16 + i) * 3 + peer_world));
    }
    win.unlock_all();
    p.barrier(c);
    win.free_window();
    p.barrier();
  });
}

TEST(Comm, RecursiveSplit) {
  Engine e(ecfg(8));
  e.run([](Process& p) {
    const Comm half = p.comm_split(kCommWorld, p.rank() / 4, p.rank());
    const Comm quarter = p.comm_split(half, p.comm_rank(half) / 2, p.rank());
    EXPECT_EQ(p.comm_size(quarter), 2);
    std::uint64_t one = 1, total = 0;
    p.allreduce_u64(&one, &total, 1, ReduceOp::kSum, quarter);
    EXPECT_EQ(total, 2u);
    p.barrier();
  });
}

TEST(Comm, NonMemberAccessRejected) {
  Engine e(ecfg(4));
  EXPECT_THROW(e.run([](Process& p) {
    const Comm c = p.comm_split(kCommWorld, p.rank() % 2, p.rank());
    // Every rank got its own comm; rank 0's handle is the even comm (the
    // first created). Odd ranks asking for their rank within it must fail.
    const Comm even_comm{1};  // ids are deterministic: first split comm
    if (p.rank() % 2 == 1 && c.id != even_comm.id) {
      p.comm_rank(even_comm);  // not a member -> throws
    } else {
      throw util::ContractError("expected path");
    }
  }),
               util::ContractError);
}

TEST(Comm, SplitIsDeterministic) {
  auto ids = [] {
    Engine e(ecfg(6));
    auto out = std::make_shared<std::vector<int>>(6, -1);
    e.run([out](Process& p) {
      const Comm c = p.comm_split(kCommWorld, p.rank() % 3, -p.rank());
      (*out)[static_cast<std::size_t>(p.rank())] = c.id * 100 + p.comm_rank(c);
    });
    return *out;
  };
  EXPECT_EQ(ids(), ids());
}

}  // namespace
