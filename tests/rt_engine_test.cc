// Tests for rmasim, the simulated MPI-3 RMA runtime substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "netmodel/hierarchy.h"
#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/error.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::LockType;
using rmasim::Process;
using rmasim::ReduceOp;
using rmasim::TimePolicy;
using rmasim::Window;

Engine::Config flat_cfg(int nranks, double alpha = 2.0, double beta = 0.001) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(alpha, beta);
  cfg.time_policy = TimePolicy::kModeled;
  return cfg;
}

TEST(Engine, RunsEveryRankExactlyOnce) {
  Engine e(flat_cfg(8));
  std::vector<std::atomic<int>> hits(8);
  e.run([&](Process& p) { hits[p.rank()]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Engine, SingleRankWorks) {
  Engine e(flat_cfg(1));
  e.run([](Process& p) {
    EXPECT_EQ(p.rank(), 0);
    EXPECT_EQ(p.nranks(), 1);
    p.barrier();  // trivially completes
  });
}

TEST(Engine, RequiresModel) {
  Engine::Config cfg;
  cfg.nranks = 2;
  EXPECT_THROW(Engine e(cfg), util::ContractError);
}

TEST(Engine, ComputeAdvancesVirtualTime) {
  Engine e(flat_cfg(2));
  e.run([](Process& p) {
    const double t0 = p.now_us();
    p.compute_us(123.5);
    EXPECT_DOUBLE_EQ(p.now_us() - t0, 123.5);
  });
  EXPECT_DOUBLE_EQ(e.final_time_us(0), 123.5);
}

TEST(Engine, ExceptionsPropagateToRun) {
  Engine e(flat_cfg(4));
  EXPECT_THROW(
      e.run([](Process& p) {
        if (p.rank() == 2) throw std::runtime_error("boom");
        p.barrier();  // other ranks must be unwound, not deadlock
      }),
      std::runtime_error);
}

TEST(Engine, DeadlockIsDetected) {
  Engine e(flat_cfg(3));
  EXPECT_THROW(
      e.run([](Process& p) {
        if (p.rank() != 0) p.barrier();  // rank 0 never arrives
      }),
      util::ContractError);
}

TEST(Window, AllocateExposesZeroedMemoryEverywhere) {
  Engine e(flat_cfg(4));
  e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(256, &base);
    ASSERT_NE(base, nullptr);
    for (int t = 0; t < p.nranks(); ++t) {
      EXPECT_EQ(p.win_size(w, t), 256u);
      ASSERT_NE(p.win_raw(w, t), nullptr);
    }
    auto* bytes = static_cast<unsigned char*>(base);
    for (int i = 0; i < 256; ++i) EXPECT_EQ(bytes[i], 0);
    p.win_free(w);
  });
}

TEST(Window, GetReadsRemoteData) {
  Engine e(flat_cfg(4));
  e.run([](Process& p) {
    std::vector<std::uint32_t> mine(64);
    std::iota(mine.begin(), mine.end(), 1000u * p.rank());
    Window w = p.win_create(mine.data(), mine.size() * sizeof(std::uint32_t));
    p.barrier();
    p.lock_all(w);
    const int peer = (p.rank() + 1) % p.nranks();
    std::vector<std::uint32_t> got(64);
    p.get(got.data(), got.size() * sizeof(std::uint32_t), peer, 0, w);
    p.flush(peer, w);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(got[i], 1000u * peer + i);
    p.unlock_all(w);
    p.barrier();
    p.win_free(w);
  });
}

TEST(Window, GetWithDisplacement) {
  Engine e(flat_cfg(2));
  e.run([](Process& p) {
    std::vector<std::uint8_t> mine(128);
    for (int i = 0; i < 128; ++i) mine[i] = static_cast<std::uint8_t>(i ^ p.rank());
    Window w = p.win_create(mine.data(), mine.size());
    p.barrier();
    std::uint8_t got[16];
    p.get(got, 16, 1 - p.rank(), 100, w);
    p.flush_all(w);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(got[i], static_cast<std::uint8_t>((100 + i) ^ (1 - p.rank())));
    }
    p.barrier();
    p.win_free(w);
  });
}

TEST(Window, PutWritesRemoteData) {
  Engine e(flat_cfg(2));
  e.run([](Process& p) {
    std::vector<std::uint64_t> mine(8, 0);
    Window w = p.win_create(mine.data(), mine.size() * sizeof(std::uint64_t));
    p.barrier();
    if (p.rank() == 0) {
      std::uint64_t v = 0xabcdef;
      p.put(&v, sizeof(v), 1, 3 * sizeof(std::uint64_t), w);
      p.flush(1, w);
    }
    p.barrier();
    if (p.rank() == 1) EXPECT_EQ(mine[3], 0xabcdefull);
    p.win_free(w);
  });
}

TEST(Window, OutOfBoundsAccessThrows) {
  Engine e(flat_cfg(2));
  EXPECT_THROW(e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(64, &base);
    char buf[32];
    p.get(buf, 32, 1 - p.rank(), 40, w);  // 40+32 > 64
  }),
               util::ContractError);
}

TEST(Window, GetBlocksPacksStridedData) {
  Engine e(flat_cfg(2));
  e.run([](Process& p) {
    std::vector<std::uint8_t> mine(64);
    for (int i = 0; i < 64; ++i) mine[i] = static_cast<std::uint8_t>(i + 10 * p.rank());
    Window w = p.win_create(mine.data(), mine.size());
    p.barrier();
    Process::Block blocks[] = {{0, 4}, {16, 4}, {32, 4}};
    std::uint8_t got[12];
    p.get_blocks(got, 1 - p.rank(), 4, blocks, 3, w);
    p.flush_all(w);
    const int peer = 1 - p.rank();
    for (int b = 0; b < 3; ++b) {
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(got[b * 4 + i], static_cast<std::uint8_t>(4 + b * 16 + i + 10 * peer));
      }
    }
    p.barrier();
    p.win_free(w);
  });
}

TEST(Timing, FlushWaitsForModeledTransfer) {
  // alpha=2us, beta=0.001us/B: a 1000-byte get completes 3us after issue.
  Engine e(flat_cfg(2, 2.0, 0.001));
  e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(4096, &base);
    char buf[1000];
    const double t0 = p.now_us();
    p.get(buf, 1000, 1 - p.rank(), 0, w);
    p.flush(1 - p.rank(), w);
    EXPECT_NEAR(p.now_us() - t0, 3.0, 1e-9);
    p.win_free(w);
  });
}

TEST(Timing, ComputeOverlapsWithTransfer) {
  // The essence of Fig. 8: compute issued between get and flush hides the
  // transfer.
  Engine e(flat_cfg(2, 10.0, 0.0));
  e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(64, &base);
    char buf[8];
    const double t0 = p.now_us();
    p.get(buf, 8, 1 - p.rank(), 0, w);
    p.compute_us(10.0);  // as long as the transfer
    p.flush(1 - p.rank(), w);
    // Total should be ~10us (fully overlapped), not 20us.
    EXPECT_NEAR(p.now_us() - t0, 10.0, 1e-9);
    p.win_free(w);
  });
}

TEST(Timing, FlushOnlyWaitsForItsTarget) {
  Engine e(flat_cfg(4, 50.0, 0.0));
  e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(64, &base);
    if (p.rank() == 0) {
      char buf[8];
      p.get(buf, 8, 1, 0, w);  // completes at 50us
      p.compute_us(60.0);
      char buf2[8];
      p.get(buf2, 8, 2, 0, w);  // completes at ~110us
      const double before = p.now_us();
      p.flush(1, w);  // already complete; no wait
      EXPECT_NEAR(p.now_us(), before, 1e-9);
      p.flush(2, w);  // waits ~50
      EXPECT_GT(p.now_us(), before + 40.0);
    }
    p.win_free(w);
  });
}

TEST(Timing, BarrierSynchronizesClocks) {
  Engine e(flat_cfg(3, 1.0, 0.0));
  e.run([](Process& p) {
    p.compute_us(p.rank() * 100.0);  // rank 2 is the straggler at 200us
    p.barrier();
    EXPECT_GE(p.now_us(), 200.0);
  });
  // All ranks end at the same post-barrier time.
  EXPECT_DOUBLE_EQ(e.final_time_us(0), e.final_time_us(1));
  EXPECT_DOUBLE_EQ(e.final_time_us(1), e.final_time_us(2));
}

TEST(Collectives, AllgatherConcatenatesInRankOrder) {
  Engine e(flat_cfg(5));
  e.run([](Process& p) {
    const std::uint32_t mine = 100 + p.rank();
    std::vector<std::uint32_t> all(5);
    p.allgather(&mine, all.data(), sizeof(mine));
    for (int r = 0; r < 5; ++r) EXPECT_EQ(all[r], 100u + r);
  });
}

TEST(Collectives, AllgathervVariableContributions) {
  Engine e(flat_cfg(3));
  e.run([](Process& p) {
    // rank r contributes r+1 bytes of value 'a'+r
    std::vector<char> mine(p.rank() + 1, static_cast<char>('a' + p.rank()));
    const std::size_t counts[] = {1, 2, 3};
    std::vector<char> all(6);
    p.allgatherv(mine.data(), mine.size(), all.data(), counts);
    EXPECT_EQ(std::string(all.begin(), all.end()), "abbccc");
  });
}

TEST(Collectives, AllreduceSumMaxMin) {
  Engine e(flat_cfg(4));
  e.run([](Process& p) {
    const double v = 1.0 + p.rank();  // 1..4
    double sum = 0, mx = 0, mn = 0;
    p.allreduce_f64(&v, &sum, 1, ReduceOp::kSum);
    p.allreduce_f64(&v, &mx, 1, ReduceOp::kMax);
    p.allreduce_f64(&v, &mn, 1, ReduceOp::kMin);
    EXPECT_DOUBLE_EQ(sum, 10.0);
    EXPECT_DOUBLE_EQ(mx, 4.0);
    EXPECT_DOUBLE_EQ(mn, 1.0);
    const std::uint64_t u = p.rank() + 1;
    std::uint64_t usum = 0;
    p.allreduce_u64(&u, &usum, 1, ReduceOp::kSum);
    EXPECT_EQ(usum, 10u);
  });
}

TEST(Locks, ExclusiveLockSerializesCriticalSections) {
  Engine e(flat_cfg(4, 1.0, 0.0));
  auto counter = std::make_shared<std::vector<int>>(1, 0);
  e.run([counter](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(8, &base);
    for (int iter = 0; iter < 10; ++iter) {
      p.lock(LockType::kExclusive, 0, w);
      const int v = (*counter)[0];
      p.yield();  // try to provoke interleaving inside the section
      (*counter)[0] = v + 1;
      p.unlock(0, w);
    }
    p.barrier();
    EXPECT_EQ((*counter)[0], 40);
    p.win_free(w);
  });
}

TEST(Locks, SharedLocksCoexist) {
  Engine e(flat_cfg(3, 1.0, 0.0));
  e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(8, &base);
    p.lock(LockType::kShared, 0, w);
    p.barrier();  // all three hold the shared lock simultaneously
    p.unlock(0, w);
    p.win_free(w);
  });
}

TEST(Epochs, FenceCompletesAndSynchronizes) {
  Engine e(flat_cfg(2, 5.0, 0.0));
  e.run([](Process& p) {
    std::vector<std::uint32_t> mine(4, 7u * (p.rank() + 1));
    Window w = p.win_create(mine.data(), mine.size() * sizeof(std::uint32_t));
    p.fence(w);
    std::uint32_t got = 0;
    p.get(&got, sizeof(got), 1 - p.rank(), 0, w);
    p.fence(w);
    EXPECT_EQ(got, 7u * (2 - p.rank()));
    p.win_free(w);
  });
}

TEST(Windows, MultipleWindowsAreIndependent) {
  Engine e(flat_cfg(2));
  e.run([](Process& p) {
    std::vector<std::uint8_t> a(32, static_cast<std::uint8_t>(p.rank() + 1));
    std::vector<std::uint8_t> b(32, static_cast<std::uint8_t>(p.rank() + 100));
    Window wa = p.win_create(a.data(), a.size());
    Window wb = p.win_create(b.data(), b.size());
    p.barrier();
    std::uint8_t ga = 0, gb = 0;
    p.get(&ga, 1, 1 - p.rank(), 0, wa);
    p.get(&gb, 1, 1 - p.rank(), 0, wb);
    p.flush_all(wa);
    p.flush_all(wb);
    EXPECT_EQ(ga, (1 - p.rank()) + 1);
    EXPECT_EQ(gb, (1 - p.rank()) + 100);
    p.barrier();
    p.win_free(wb);
    p.win_free(wa);
  });
}

TEST(Windows, UseAfterFreeThrows) {
  Engine e(flat_cfg(2));
  EXPECT_THROW(e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(64, &base);
    p.win_free(w);
    char c;
    p.get(&c, 1, 0, 0, w);
  }),
               util::ContractError);
}

TEST(Determinism, ModeledRunsAreBitIdentical) {
  auto run_once = [] {
    Engine e(flat_cfg(6, 1.5, 0.002));
    e.run([](Process& p) {
      void* base = nullptr;
      Window w = p.win_allocate(1024, &base);
      char buf[64];
      for (int i = 0; i < 50; ++i) {
        p.get(buf, 1 + (i * 7) % 60, (p.rank() + 1 + i) % p.nranks(), i, w);
        if (i % 5 == 0) p.flush_all(w);
        if (i % 11 == 0) p.barrier();
      }
      p.flush_all(w);
      p.barrier();
      p.win_free(w);
    });
    return e.max_final_time_us();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(MeasuredPolicy, UserComputeIsCharged) {
  Engine::Config cfg = flat_cfg(1);
  cfg.time_policy = TimePolicy::kMeasured;
  Engine e(cfg);
  e.run([](Process& p) {
    // Burn some real CPU in "user code"; the virtual clock must advance.
    volatile double x = 1.0;
    for (int i = 0; i < 2000000; ++i) x = x * 1.0000001 + 0.5;
    EXPECT_GT(p.now_us(), 100.0);  // several ms of work measured
  });
}

TEST(ManyRanks, ScalesTo128Threads) {
  Engine e(flat_cfg(128, 1.0, 0.0));
  e.run([](Process& p) {
    const std::uint64_t one = 1;
    std::uint64_t total = 0;
    p.allreduce_u64(&one, &total, 1, ReduceOp::kSum);
    EXPECT_EQ(total, 128u);
    p.barrier();
  });
}

}  // namespace
