// Differential test of S_w: the segregated-bin + AVL storage against an
// obviously-correct reference best-fit model.
//
// The fast bins are an *implementation* of best-fit (smallest sufficient
// size, lowest offset among equals) — not an approximation. The paper's
// fragmentation study (Fig. 10) depends on that policy, so the reference
// model here is the policy spelled out naively: a sorted list of free
// segments scanned in full for every operation. A long randomized
// alloc/dealloc/extend trace must keep the real allocator byte-for-byte
// in lockstep with the model, with validate() green the whole way.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "clampi/storage.h"
#include "util/align.h"
#include "util/rng.h"

namespace {

using clampi::Storage;
namespace util = clampi::util;

constexpr std::size_t kNoFit = std::numeric_limits<std::size_t>::max();

/// Reference best-fit allocator: free segments kept sorted by offset,
/// every decision made by exhaustive scan.
class RefModel {
 public:
  explicit RefModel(std::size_t capacity) : capacity_(capacity) {
    free_.push_back({0, capacity});
  }

  /// Returns the chosen offset, or kNoFit.
  std::size_t alloc(std::size_t bytes) {
    const std::size_t need =
        util::round_up(std::max<std::size_t>(bytes, 1), util::kCacheLineBytes);
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].size < need) continue;
      if (best == free_.size() || free_[i].size < free_[best].size) best = i;
      // Ties on size: free_ is offset-sorted, so the first hit already
      // has the lowest offset.
    }
    if (best == free_.size()) return kNoFit;
    const std::size_t off = free_[best].off;
    free_[best].off += need;
    free_[best].size -= need;
    if (free_[best].size == 0) free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
    return off;
  }

  void dealloc(std::size_t off, std::size_t size) {
    auto it = std::lower_bound(free_.begin(), free_.end(), off,
                               [](const Seg& s, std::size_t o) { return s.off < o; });
    it = free_.insert(it, {off, size});
    // Coalesce with the successor, then the predecessor.
    const auto at = static_cast<std::size_t>(it - free_.begin());
    if (at + 1 < free_.size() && free_[at].off + free_[at].size == free_[at + 1].off) {
      free_[at].size += free_[at + 1].size;
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(at) + 1);
    }
    if (at > 0 && free_[at - 1].off + free_[at - 1].size == free_[at].off) {
      free_[at - 1].size += free_[at].size;
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(at));
    }
  }

  /// In-place growth consuming the leading part of the adjacent free
  /// segment; mirrors Storage::try_extend.
  bool extend(std::size_t off, std::size_t cur_size, std::size_t new_bytes) {
    const std::size_t target = util::round_up(new_bytes, util::kCacheLineBytes);
    if (target <= cur_size) return true;
    const std::size_t need = target - cur_size;
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].off != off + cur_size) continue;
      if (free_[i].size < need) return false;
      free_[i].off += need;
      free_[i].size -= need;
      if (free_[i].size == 0) free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
    return false;
  }

  std::size_t free_bytes() const {
    std::size_t t = 0;
    for (const Seg& s : free_) t += s.size;
    return t;
  }

  std::size_t largest_free() const {
    std::size_t m = 0;
    for (const Seg& s : free_) m = std::max(m, s.size);
    return m;
  }

 private:
  struct Seg {
    std::size_t off;
    std::size_t size;
  };
  std::size_t capacity_;
  std::vector<Seg> free_;  // sorted by offset, never adjacent
};

struct Live {
  Storage::Region* r;
  std::size_t off;
  std::size_t size;  // rounded size, as both allocators track it
};

/// One randomized trace: weighted alloc/dealloc/extend ops; every step
/// cross-checked (chosen offset, byte accounting, largest free block)
/// and validate()d.
void run_trace(std::uint64_t seed, std::size_t capacity, int steps) {
  Storage s(capacity);
  RefModel m(s.capacity());
  util::Xoshiro256 rng(seed);
  std::vector<Live> live;

  for (int step = 0; step < steps; ++step) {
    const std::uint64_t dice = rng() % 100;
    if (dice < 55 || live.empty()) {
      // Sizes span the bin classes and the tree range; odd byte counts
      // exercise the round-up.
      const std::size_t kinds[6] = {1, 200, 1024, 4096, 4097, 20000};
      const std::size_t bytes = kinds[rng() % 6] + rng() % 64;
      Storage::Region* r = s.alloc(bytes);
      const std::size_t ref = m.alloc(bytes);
      if (r == nullptr) {
        ASSERT_EQ(ref, kNoFit) << "model found a fit the allocator missed @" << step;
      } else {
        ASSERT_NE(ref, kNoFit) << "allocator found a fit the model missed @" << step;
        ASSERT_EQ(r->offset, ref) << "best-fit divergence @" << step;
        live.push_back({r, r->offset, r->size});
      }
    } else if (dice < 85) {
      const std::size_t at = rng() % live.size();
      s.dealloc(live[at].r);
      m.dealloc(live[at].off, live[at].size);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
    } else {
      const std::size_t at = rng() % live.size();
      const std::size_t grown = live[at].size + 64 + rng() % 4096;
      const bool got = s.try_extend(live[at].r, grown);
      const bool ref = m.extend(live[at].off, live[at].size, grown);
      ASSERT_EQ(got, ref) << "extend divergence @" << step;
      if (got) live[at].size = live[at].r->size;
    }
    ASSERT_EQ(s.free_bytes(), m.free_bytes()) << "byte accounting @" << step;
    ASSERT_EQ(s.largest_free(), m.largest_free()) << "largest-free @" << step;
    ASSERT_TRUE(s.validate()) << "invariant break @" << step;
  }
  // Drain: everything must come back and coalesce to one maximal region.
  for (const Live& l : live) {
    s.dealloc(l.r);
    m.dealloc(l.off, l.size);
  }
  EXPECT_EQ(s.free_bytes(), s.capacity());
  EXPECT_EQ(s.largest_free(), s.capacity());
  EXPECT_TRUE(s.validate());
}

TEST(StorageDiff, SmallBufferHighChurn) { run_trace(1, std::size_t{256} << 10, 3000); }
TEST(StorageDiff, MediumBuffer) { run_trace(2, std::size_t{4} << 20, 3000); }
TEST(StorageDiff, TinyBufferExhaustionHeavy) { run_trace(3, std::size_t{64} << 10, 2500); }

// Directed check of the bin/tree boundary: exact kMaxBinBytes allocations
// are bin-served, one byte more goes to the tree, and the two paths keep
// the same best-fit choice.
TEST(StorageDiff, BinTreeBoundary) {
  Storage s(std::size_t{1} << 20);
  RefModel m(s.capacity());
  std::vector<Live> live;
  const std::size_t sizes[4] = {Storage::kMaxBinBytes, Storage::kMaxBinBytes + 1,
                                Storage::kMaxBinBytes - 63, 2 * Storage::kMaxBinBytes};
  for (int round = 0; round < 32; ++round) {
    for (const std::size_t b : sizes) {
      Storage::Region* r = s.alloc(b);
      const std::size_t ref = m.alloc(b);
      ASSERT_NE(r, nullptr);
      ASSERT_EQ(r->offset, ref);
      live.push_back({r, r->offset, r->size});
    }
    // Free every other region: leaves interior holes on both sides of
    // the boundary for the next round's best-fit to pick through.
    for (std::size_t i = round % 2; i < live.size(); i += 2) {
      s.dealloc(live[i].r);
      m.dealloc(live[i].off, live[i].size);
    }
    std::vector<Live> kept;
    for (std::size_t i = (round % 2) ^ 1; i < live.size(); i += 2) kept.push_back(live[i]);
    live.swap(kept);
    ASSERT_EQ(s.free_bytes(), m.free_bytes());
    ASSERT_TRUE(s.validate());
  }
  const auto& c = s.counters();
  EXPECT_GT(c.fastbin_allocs, 0u);
  EXPECT_GT(c.tree_allocs, 0u);
}

}  // namespace
