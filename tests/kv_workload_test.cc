// Tests for the KV workload driver (src/kv/workload.h): shadow-checked
// cached and uncached runs, and the resilient-mode availability story
// through rank death (docs/KV.md, docs/FAULTS.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "fault/injector.h"
#include "kv/store.h"
#include "kv/workload.h"
#include "netmodel/model.h"
#include "rt/engine.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;

constexpr int kServers = 2;
constexpr int kClients = 2;
constexpr int kRanks = kServers + kClients;

Engine::Config engine_cfg(std::shared_ptr<fault::Injector> injector = nullptr) {
  Engine::Config cfg;
  cfg.nranks = kRanks;
  cfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  cfg.injector = std::move(injector);
  return cfg;
}

kv::StoreConfig store_cfg(bool resilient) {
  kv::StoreConfig cfg;
  cfg.nkeys = 4000;
  cfg.nservers = kServers;
  cfg.replication = resilient ? 2 : 1;
  cfg.cache.mode = Mode::kUserDefined;
  cfg.cache.index_entries = 4096;
  cfg.cache.storage_bytes = 8 << 20;
  if (resilient) {
    cfg.cache.health_failure_threshold = 3;
    cfg.cache.degraded_reads = true;
    cfg.cache.degraded_max_staleness_us = 1e9;
  }
  return cfg;
}

/// Run one driver per client rank and collect the reports.
std::vector<kv::WorkloadReport> run_clients(const kv::StoreConfig& scfg,
                                            const kv::WorkloadConfig& wcfg,
                                            std::shared_ptr<fault::Injector> injector = nullptr,
                                            double warm_until_us = 0.0) {
  std::vector<kv::WorkloadReport> reports(kClients);
  Engine e(engine_cfg(std::move(injector)));
  e.run([&](Process& p) {
    kv::Store store(p, scfg);
    if (p.rank() >= kServers) {
      const int client = p.rank() - kServers;
      if (warm_until_us > 0.0) {
        // Fill the cache while every server is still alive, then idle past
        // the injector's death time so the main run sees the dead rank.
        kv::WorkloadConfig warm = wcfg;
        warm.ops = 2000;
        warm.get_ratio = 1.0;
        warm.epoch_ops = warm.ops + 1;
        warm.seed = 0x7761726dull;
        kv::Driver warmer(store, warm, client, kClients);
        const kv::WorkloadReport wr = warmer.run(p);
        EXPECT_EQ(wr.mismatches, 0u);
        if (p.now_us() < warm_until_us) p.compute_us(warm_until_us - p.now_us());
      }
      kv::Driver driver(store, wcfg, client, kClients);
      reports[client] = driver.run(p);
    }
    p.barrier();
    store.free_window();
  });
  return reports;
}

TEST(KvWorkload, CachedRunIsExactAndHitsCache) {
  kv::WorkloadConfig wcfg;
  wcfg.ops = 12000;
  wcfg.get_ratio = 0.9;
  wcfg.zipf_s = 0.99;
  wcfg.epoch_ops = 4000;
  const auto reports = run_clients(store_cfg(/*resilient=*/false), wcfg);
  for (const auto& r : reports) {
    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_EQ(r.attempted, wcfg.ops);
    EXPECT_DOUBLE_EQ(r.availability(), 1.0);
    EXPECT_GT(r.gets, 0u);
    EXPECT_GT(r.puts, 0u);
    EXPECT_GT(r.hit_frac(), 0.3);  // the Zipf head must become resident
    EXPECT_GT(r.p99_us, 0.0);
    EXPECT_GE(r.p99_us, r.p50_us);
  }
}

TEST(KvWorkload, UncachedBaselineIsExact) {
  kv::WorkloadConfig wcfg;
  wcfg.ops = 6000;
  wcfg.get_ratio = 0.9;
  wcfg.zipf_s = 0.99;
  wcfg.use_cache = false;
  const auto reports = run_clients(store_cfg(/*resilient=*/false), wcfg);
  for (const auto& r : reports) {
    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_DOUBLE_EQ(r.availability(), 1.0);
    EXPECT_EQ(r.cached_hits, 0u);  // get_nocache never hits
  }
}

TEST(KvWorkload, WriterPartitionIsAPartition) {
  // Engine-free: the single-writer map must be stable and cover all clients.
  Engine e(engine_cfg());
  e.run([](Process& p) {
    kv::Store store(p, store_cfg(false));
    if (p.rank() == kServers) {
      kv::WorkloadConfig wcfg;
      kv::Driver a(store, wcfg, 0, kClients), b(store, wcfg, 1, kClients);
      std::vector<std::uint64_t> owned(kClients, 0);
      for (std::uint64_t i = 0; i < 2000; ++i) {
        const std::uint64_t key = store.key_at(i);
        const int w = a.writer_of(key);
        EXPECT_EQ(w, b.writer_of(key));  // all drivers agree
        ASSERT_GE(w, 0);
        ASSERT_LT(w, kClients);
        ++owned[w];
      }
      for (int c = 0; c < kClients; ++c) EXPECT_GT(owned[c], 500u);
    }
    p.barrier();
    store.free_window();
  });
}

TEST(KvWorkload, RankDeathResilientModeKeepsAvailabilityOne) {
  const double kDeathUs = 30000.0;
  fault::Plan plan;
  plan.kill_rank(/*rank=*/1, kDeathUs);

  kv::WorkloadConfig wcfg;
  wcfg.ops = 10000;
  wcfg.get_ratio = 0.9;
  wcfg.zipf_s = 0.99;
  wcfg.epoch_ops = 5000;  // one Listing-1 invalidation mid-run
  const auto reports =
      run_clients(store_cfg(/*resilient=*/true), wcfg,
                  std::make_shared<fault::Injector>(plan), kDeathUs + 2000.0);

  std::uint64_t degraded = 0, rerouted = 0;
  for (const auto& r : reports) {
    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_DOUBLE_EQ(r.availability(), 1.0)
        << "served " << r.served << "/" << r.attempted;
    degraded += r.degraded_serves;
    rerouted += r.rerouted;
  }
  // The dead rank owns ~half the ring: survival must actually have come
  // through the resilience machinery, not from never touching rank 1.
  EXPECT_GT(degraded + rerouted, 0u);
}

TEST(KvWorkload, RankDeathFragileModeLosesAvailability) {
  const double kDeathUs = 30000.0;
  fault::Plan plan;
  plan.kill_rank(/*rank=*/1, kDeathUs);

  kv::WorkloadConfig wcfg;
  wcfg.ops = 10000;
  wcfg.get_ratio = 0.9;
  wcfg.zipf_s = 0.99;
  wcfg.epoch_ops = 5000;
  const auto reports =
      run_clients(store_cfg(/*resilient=*/false), wcfg,
                  std::make_shared<fault::Injector>(plan), kDeathUs + 2000.0);

  double min_avail = 1.0;
  for (const auto& r : reports) {
    EXPECT_EQ(r.mismatches, 0u);  // lost ops, never wrong bytes
    min_avail = std::min(min_avail, r.availability());
  }
  EXPECT_LT(min_avail, 1.0);
}

}  // namespace
