// Config validation at window creation (validate_config / CacheCore ctor).
#include <gtest/gtest.h>

#include "clampi/cache.h"
#include "clampi/config.h"
#include "clampi/info.h"
#include "util/error.h"

namespace {

using namespace clampi;

TEST(ConfigValidation, DefaultConfigIsValid) {
  EXPECT_NO_THROW(validate_config(Config{}));
  EXPECT_NO_THROW(CacheCore{Config{}});
}

TEST(ConfigValidation, RejectsZeroSizedKnobs) {
  Config c;
  c.index_entries = 0;
  EXPECT_THROW(validate_config(c), util::ContractError);

  Config d;
  d.cuckoo_arity = 0;
  EXPECT_THROW(validate_config(d), util::ContractError);
  EXPECT_THROW(CacheCore{d}, util::ContractError);  // before index construction

  Config e;
  e.sample_size = 0;
  EXPECT_THROW(validate_config(e), util::ContractError);
  EXPECT_THROW(CacheCore{e}, util::ContractError);
}

TEST(ConfigValidation, RejectsInvertedBounds) {
  Config c;
  c.min_index_entries = 1024;
  c.max_index_entries = 64;
  EXPECT_THROW(validate_config(c), util::ContractError);

  Config d;
  d.min_storage_bytes = std::size_t{1} << 30;
  d.max_storage_bytes = std::size_t{64} << 10;
  EXPECT_THROW(validate_config(d), util::ContractError);
}

TEST(ConfigValidation, AdaptiveGatesTheRangeCheck) {
  // Tiny fixed caches are legal (tests rely on them)...
  Config fixed;
  fixed.adaptive = false;
  fixed.index_entries = 16;     // below min_index_entries = 64
  fixed.storage_bytes = 1024;   // below min_storage_bytes = 64 KiB
  EXPECT_NO_THROW(validate_config(fixed));
  EXPECT_NO_THROW(CacheCore{fixed});

  // ...but an adaptive cache must start inside its steering range.
  Config adaptive = fixed;
  adaptive.adaptive = true;
  EXPECT_THROW(validate_config(adaptive), util::ContractError);

  adaptive.index_entries = 4096;
  adaptive.storage_bytes = std::size_t{4} << 20;
  EXPECT_NO_THROW(validate_config(adaptive));

  adaptive.storage_bytes = (std::size_t{1} << 30) + 1;  // above max
  EXPECT_THROW(validate_config(adaptive), util::ContractError);
}

TEST(ConfigValidation, RejectsMalformedRetryPolicy) {
  Config c;
  c.max_retries = -1;
  EXPECT_THROW(validate_config(c), util::ContractError);

  Config d;
  d.retry_backoff_us = -1.0;
  EXPECT_THROW(validate_config(d), util::ContractError);

  Config e;
  e.retry_backoff_factor = 0.5;  // must not shrink
  EXPECT_THROW(validate_config(e), util::ContractError);

  Config f;
  f.retry_jitter = 1.0;  // must stay below 1 (backoff must stay positive)
  EXPECT_THROW(validate_config(f), util::ContractError);
  f.retry_jitter = -0.1;
  EXPECT_THROW(validate_config(f), util::ContractError);

  Config g;
  g.epoch_retry_budget_us = -5.0;
  EXPECT_THROW(validate_config(g), util::ContractError);

  Config ok;
  ok.max_retries = 8;
  ok.retry_backoff_us = 2.0;
  ok.retry_backoff_factor = 1.5;
  ok.retry_jitter = 0.5;
  ok.epoch_retry_budget_us = 1000.0;
  EXPECT_NO_THROW(validate_config(ok));
}

TEST(ConfigValidation, RejectsMalformedBreakerKnobs) {
  Config c;
  c.breaker_failure_threshold = -1;
  EXPECT_THROW(validate_config(c), util::ContractError);

  // The dependent knobs are only checked once the breaker is enabled.
  Config off;
  off.breaker_window_us = -1.0;
  off.breaker_open_us = 0.0;
  off.breaker_probe_every_n = 0;
  off.breaker_halfopen_successes = 0;
  EXPECT_NO_THROW(validate_config(off));

  Config on;
  on.breaker_failure_threshold = 4;
  EXPECT_NO_THROW(validate_config(on));
  on.breaker_window_us = 0.0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.breaker_window_us = 1000.0;
  on.breaker_open_us = -1.0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.breaker_open_us = 500.0;
  on.breaker_probe_every_n = 0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.breaker_probe_every_n = 4;
  on.breaker_halfopen_successes = 0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.breaker_halfopen_successes = 2;
  EXPECT_NO_THROW(validate_config(on));
}

TEST(ConfigValidation, RejectsMalformedHealthKnobs) {
  Config c;
  c.health_failure_threshold = -2;
  EXPECT_THROW(validate_config(c), util::ContractError);

  // Dependent detector knobs are only checked once the detector is on.
  Config off;
  off.health_window_us = -1.0;
  off.health_ewma_alpha = 7.0;
  off.health_ewma_halflife_us = 0.0;
  off.health_suspect_threshold = 0.0;
  off.health_quarantine_dwell_us = -5.0;
  off.health_probe_successes = 0;
  EXPECT_NO_THROW(validate_config(off));

  Config on;
  on.health_failure_threshold = 3;
  EXPECT_NO_THROW(validate_config(on));
  on.health_window_us = 0.0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.health_window_us = 10000.0;
  on.health_ewma_alpha = 0.0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.health_ewma_alpha = 1.5;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.health_ewma_alpha = 0.3;
  on.health_ewma_halflife_us = 0.0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.health_ewma_halflife_us = 5000.0;
  on.health_suspect_threshold = 0.0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.health_suspect_threshold = 2.0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.health_suspect_threshold = 0.5;
  on.health_quarantine_dwell_us = -1.0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.health_quarantine_dwell_us = 5000.0;
  on.health_probe_successes = 0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.health_probe_successes = 2;
  EXPECT_NO_THROW(validate_config(on));

  // The staleness bound is validated independently of the detector.
  Config stale;
  stale.degraded_reads = true;
  stale.degraded_max_staleness_us = -1.0;
  EXPECT_THROW(validate_config(stale), util::ContractError);
  stale.degraded_max_staleness_us = 0.0;  // 0 = unbounded
  EXPECT_NO_THROW(validate_config(stale));
}

TEST(ConfigValidation, RejectsMalformedTailKnobs) {
  Config c;
  c.op_deadline_us = -1.0;
  EXPECT_THROW(validate_config(c), util::ContractError);

  // With retries enabled, a deadline at or below the first backoff could
  // never survive a single retry: reject the combination outright.
  Config d;
  d.max_retries = 3;
  d.retry_backoff_us = 50.0;
  d.op_deadline_us = 50.0;
  EXPECT_THROW(validate_config(d), util::ContractError);
  d.op_deadline_us = 51.0;
  EXPECT_NO_THROW(validate_config(d));
  // Without retries any positive deadline stands on its own.
  d.max_retries = 0;
  d.op_deadline_us = 10.0;
  EXPECT_NO_THROW(validate_config(d));

  // Shedding requires deadlines: without them there is no miss signal.
  Config e;
  e.load_shedding = true;
  EXPECT_THROW(validate_config(e), util::ContractError);
  e.op_deadline_us = 500.0;
  EXPECT_NO_THROW(validate_config(e));
  EXPECT_NO_THROW(CacheCore{e});

  // The AIMD knobs are only checked once shedding is on.
  Config off;
  off.shed_window_us = -1.0;
  off.shed_miss_ratio = 2.0;
  off.shed_decrease_factor = 1.5;
  off.shed_increase = 0.0;
  off.shed_min_admit = 0.0;
  EXPECT_NO_THROW(validate_config(off));

  Config on = e;
  on.shed_window_us = 0.0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.shed_window_us = 2000.0;
  on.shed_miss_ratio = 0.0;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.shed_miss_ratio = 1.5;
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.shed_miss_ratio = 0.5;
  on.shed_decrease_factor = 1.0;  // must actually decrease
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.shed_decrease_factor = 0.5;
  on.shed_increase = 0.0;  // must actually recover
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.shed_increase = 0.1;
  on.shed_min_admit = 0.0;  // a zero floor would starve forever
  EXPECT_THROW(validate_config(on), util::ContractError);
  on.shed_min_admit = 0.1;
  EXPECT_NO_THROW(validate_config(on));
}

TEST(ConfigValidation, TailInfoKeysParse) {
  const Info info{{"clampi_op_deadline_us", "750.5"},
                  {"clampi_load_shedding", "true"},
                  {"clampi_shed_window_us", "4000"},
                  {"clampi_shed_miss_ratio", "0.25"},
                  {"clampi_shed_decrease_factor", "0.4"},
                  {"clampi_shed_increase", "0.05"},
                  {"clampi_shed_min_admit", "0.2"}};
  const Config cfg = config_from_info(info);
  EXPECT_DOUBLE_EQ(cfg.op_deadline_us, 750.5);
  EXPECT_TRUE(cfg.load_shedding);
  EXPECT_DOUBLE_EQ(cfg.shed_window_us, 4000.0);
  EXPECT_DOUBLE_EQ(cfg.shed_miss_ratio, 0.25);
  EXPECT_DOUBLE_EQ(cfg.shed_decrease_factor, 0.4);
  EXPECT_DOUBLE_EQ(cfg.shed_increase, 0.05);
  EXPECT_DOUBLE_EQ(cfg.shed_min_admit, 0.2);
  EXPECT_NO_THROW(validate_config(cfg));
}

TEST(ConfigValidation, ShardKnobRules) {
  // Power of two in [1, 256]...
  for (const std::size_t ok : {1u, 2u, 4u, 8u, 256u}) {
    Config c;
    c.cache_shards = ok;
    EXPECT_NO_THROW(validate_config(c)) << ok;
  }
  for (const std::size_t bad : {0u, 3u, 6u, 257u, 512u}) {
    Config c;
    c.cache_shards = bad;
    EXPECT_THROW(validate_config(c), util::ContractError) << bad;
  }

  // ...and both partitioned sizes must divide evenly.
  Config c;
  c.cache_shards = 8;
  c.index_entries = 4100;  // not a multiple of 8
  EXPECT_THROW(validate_config(c), util::ContractError);
  c.index_entries = 4096;
  c.storage_bytes = (std::size_t{4} << 20) + 4;
  EXPECT_THROW(validate_config(c), util::ContractError);
  c.storage_bytes = std::size_t{4} << 20;
  EXPECT_NO_THROW(validate_config(c));
  EXPECT_NO_THROW(CacheCore{c});

  const Info info{{"clampi_cache_shards", "16"}};
  EXPECT_EQ(config_from_info(info).cache_shards, 16u);
}

TEST(ConfigValidation, HealthInfoKeysParse) {
  const Info info{{"clampi_health_failure_threshold", "3"},
                  {"clampi_health_window_us", "20000"},
                  {"clampi_health_ewma_alpha", "0.25"},
                  {"clampi_health_ewma_halflife_us", "4000"},
                  {"clampi_health_suspect_threshold", "0.6"},
                  {"clampi_health_quarantine_dwell_us", "8000"},
                  {"clampi_health_probe_successes", "3"},
                  {"clampi_degraded_reads", "true"},
                  {"clampi_degraded_max_staleness_us", "250000"}};
  const Config cfg = config_from_info(info);
  EXPECT_EQ(cfg.health_failure_threshold, 3);
  EXPECT_DOUBLE_EQ(cfg.health_window_us, 20000.0);
  EXPECT_DOUBLE_EQ(cfg.health_ewma_alpha, 0.25);
  EXPECT_DOUBLE_EQ(cfg.health_ewma_halflife_us, 4000.0);
  EXPECT_DOUBLE_EQ(cfg.health_suspect_threshold, 0.6);
  EXPECT_DOUBLE_EQ(cfg.health_quarantine_dwell_us, 8000.0);
  EXPECT_EQ(cfg.health_probe_successes, 3);
  EXPECT_TRUE(cfg.degraded_reads);
  EXPECT_DOUBLE_EQ(cfg.degraded_max_staleness_us, 250000.0);
  EXPECT_NO_THROW(validate_config(cfg));
}

TEST(ConfigValidation, IntegrityInfoKeysParse) {
  const Info info{{"clampi_verify_every_n", "16"},
                  {"clampi_scrub_entries_per_epoch", "32"},
                  {"clampi_shadow_verify_every_n", "64"},
                  {"clampi_breaker_failure_threshold", "4"},
                  {"clampi_breaker_window_us", "2000"},
                  {"clampi_breaker_open_us", "750.5"},
                  {"clampi_breaker_probe_every_n", "3"},
                  {"clampi_breaker_halfopen_successes", "5"}};
  const Config cfg = config_from_info(info);
  EXPECT_EQ(cfg.verify_every_n, 16u);
  EXPECT_EQ(cfg.scrub_entries_per_epoch, 32u);
  EXPECT_EQ(cfg.shadow_verify_every_n, 64u);
  EXPECT_EQ(cfg.breaker_failure_threshold, 4);
  EXPECT_DOUBLE_EQ(cfg.breaker_window_us, 2000.0);
  EXPECT_DOUBLE_EQ(cfg.breaker_open_us, 750.5);
  EXPECT_EQ(cfg.breaker_probe_every_n, 3);
  EXPECT_EQ(cfg.breaker_halfopen_successes, 5);
  EXPECT_NO_THROW(validate_config(cfg));
}

TEST(ConfigValidation, ResilienceInfoKeysParse) {
  const Info info{{"clampi_mode", "always_cache"},
                  {"clampi_max_retries", "8"},
                  {"clampi_retry_backoff_us", "2.5"},
                  {"clampi_retry_backoff_factor", "1.5"},
                  {"clampi_retry_jitter", "0.1"},
                  {"clampi_epoch_retry_budget_us", "500"},
                  {"clampi_cache_fallback", "true"}};
  const Config cfg = config_from_info(info);
  EXPECT_EQ(cfg.mode, Mode::kAlwaysCache);
  EXPECT_EQ(cfg.max_retries, 8);
  EXPECT_DOUBLE_EQ(cfg.retry_backoff_us, 2.5);
  EXPECT_DOUBLE_EQ(cfg.retry_backoff_factor, 1.5);
  EXPECT_DOUBLE_EQ(cfg.retry_jitter, 0.1);
  EXPECT_DOUBLE_EQ(cfg.epoch_retry_budget_us, 500.0);
  EXPECT_TRUE(cfg.cache_fallback);
  EXPECT_NO_THROW(validate_config(cfg));
}

}  // namespace
