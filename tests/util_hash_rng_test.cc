// Tests for the RNG and the universal hash family used by the cuckoo index.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/align.h"
#include "util/rng.h"
#include "util/universal_hash.h"

namespace {

using clampi::util::UniversalHash;
using clampi::util::Xoshiro256;

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b();
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(11);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(8)];
  for (int c : counts) {
    EXPECT_GT(c, n / 8 * 0.9);
    EXPECT_LT(c, n / 8 * 1.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(UniversalHash, InRange) {
  Xoshiro256 rng(5);
  UniversalHash h(rng);
  for (std::uint64_t x = 0; x < 5000; ++x) {
    EXPECT_LT(h(x, 100), 100u);
    EXPECT_LT(h(x, 1), 1u);  // range 1 -> always 0
  }
}

TEST(UniversalHash, IndependentFunctionsDisagree) {
  // The cuckoo scheme needs p hash functions that map keys to mostly
  // different slots; check two members of the family collide on far fewer
  // than all inputs.
  Xoshiro256 rng(6);
  UniversalHash h1(rng), h2(rng);
  int collisions = 0;
  const int n = 10000;
  for (std::uint64_t x = 0; x < n; ++x) collisions += h1(x, 1024) == h2(x, 1024);
  EXPECT_LT(collisions, n / 50);  // ~ n/1024 expected
}

TEST(UniversalHash, SpreadsSequentialKeys) {
  // Cache keys are (target, displacement) pairs with highly regular
  // structure; the hash must still spread them.
  Xoshiro256 rng(8);
  UniversalHash h(rng);
  std::vector<int> counts(64, 0);
  const int n = 64000;
  for (std::uint64_t x = 0; x < n; ++x) ++counts[h(x * 64, 64)];  // stride-64 keys
  for (int c : counts) {
    EXPECT_GT(c, n / 64 / 2);
    EXPECT_LT(c, n / 64 * 2);
  }
}

TEST(Align, RoundUpDown) {
  using clampi::util::round_down;
  using clampi::util::round_up;
  EXPECT_EQ(round_up(0, 64), 0u);
  EXPECT_EQ(round_up(1, 64), 64u);
  EXPECT_EQ(round_up(64, 64), 64u);
  EXPECT_EQ(round_up(65, 64), 128u);
  EXPECT_EQ(round_down(63, 64), 0u);
  EXPECT_EQ(round_down(129, 64), 128u);
}

TEST(Align, Pow2Helpers) {
  using clampi::util::is_pow2;
  using clampi::util::next_pow2;
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(65));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

}  // namespace
