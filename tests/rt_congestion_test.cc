// Tests for NIC injection serialization (Engine::Config::serialize_injection).
#include <gtest/gtest.h>

#include <memory>

#include "netmodel/model.h"
#include "rt/engine.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;
using rmasim::Window;

Engine::Config cfg(int nranks, bool serialize) {
  Engine::Config c;
  c.nranks = nranks;
  c.model = std::make_shared<net::FlatModel>(10.0, 0.0);  // 10us per transfer
  c.time_policy = rmasim::TimePolicy::kModeled;
  c.serialize_injection = serialize;
  return c;
}

double one_to_one_burst(bool serialize, int gets) {
  Engine e(cfg(2, serialize));
  auto t = std::make_shared<double>(0.0);
  e.run([t, gets](Process& p) {
    void* base = nullptr;
    const Window w = p.win_allocate(4096, &base);
    if (p.rank() == 0) {
      char buf[64];
      const double t0 = p.now_us();
      for (int i = 0; i < gets; ++i) p.get(buf, 64, 1, 0, w);
      p.flush(1, w);
      *t = p.now_us() - t0;
    }
    p.barrier();
    p.win_free(w);
  });
  return *t;
}

TEST(Congestion, OffBurstsOverlapPerfectly) {
  // 8 gets pipelined to one target: without serialization they all finish
  // ~one latency after the last issue.
  const double t = one_to_one_burst(false, 8);
  EXPECT_LT(t, 15.0);
}

TEST(Congestion, OnBurstsSerialize) {
  // With a unit-capacity NIC the 8 transfers queue: ~8 * 10us.
  const double t = one_to_one_burst(true, 8);
  EXPECT_GE(t, 79.0);
  EXPECT_LT(t, 95.0);
}

TEST(Congestion, SingleTransferUnaffected) {
  EXPECT_NEAR(one_to_one_burst(false, 1), one_to_one_burst(true, 1), 1e-9);
}

TEST(Congestion, ManyToOneIncast) {
  // 7 ranks all fetch from rank 0 at the same virtual time: with
  // serialization the slowest one waits ~7 transfer times.
  auto incast = [](bool serialize) {
    Engine e(cfg(8, serialize));
    auto worst = std::make_shared<double>(0.0);
    e.run([worst](Process& p) {
      void* base = nullptr;
      const Window w = p.win_allocate(4096, &base);
      p.barrier();
      double dt = 0.0;
      if (p.rank() != 0) {
        char buf[64];
        const double t0 = p.now_us();
        p.get(buf, 64, 0, 0, w);
        p.flush(0, w);
        dt = p.now_us() - t0;
      }
      double w_max = 0.0;
      p.allreduce_f64(&dt, &w_max, 1, rmasim::ReduceOp::kMax);
      if (p.rank() == 0) *worst = w_max;
      p.barrier();
      p.win_free(w);
    });
    return *worst;
  };
  const double off = incast(false);
  const double on = incast(true);
  EXPECT_LT(off, 15.0);   // everyone overlaps
  EXPECT_GT(on, 60.0);    // last in line waits ~7 x 10us
}

TEST(Congestion, DistinctTargetsDoNotInterfere) {
  Engine e(cfg(4, true));
  e.run([](Process& p) {
    void* base = nullptr;
    const Window w = p.win_allocate(4096, &base);
    if (p.rank() == 0) {
      char buf[64];
      const double t0 = p.now_us();
      p.get(buf, 64, 1, 0, w);
      p.get(buf, 64, 2, 0, w);
      p.get(buf, 64, 3, 0, w);
      p.flush_all(w);
      // Three different NICs: fully overlapped.
      EXPECT_LT(p.now_us() - t0, 15.0);
    }
    p.barrier();
    p.win_free(w);
  });
}

}  // namespace
