// Tests for the extended MPI-3 RMA surface: one-sided atomics
// (accumulate / get_accumulate / fetch_and_op / compare_and_swap),
// flush_local, and PSCW generalized active-target synchronization.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/error.h"

namespace {

using namespace clampi;
using rmasim::AccumulateOp;
using rmasim::AccumulateType;
using rmasim::Engine;
using rmasim::Process;
using rmasim::Window;

Engine::Config ecfg(int nranks, double alpha = 2.0) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(alpha, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

TEST(Atomics, AccumulateSumFromAllRanks) {
  Engine e(ecfg(8));
  e.run([](Process& p) {
    std::vector<std::int64_t> mine(4, 0);
    Window w = p.win_create(mine.data(), mine.size() * sizeof(std::int64_t));
    p.fence(w);
    // Everyone adds (rank+1) to every element of rank 0's window.
    const std::int64_t v[4] = {p.rank() + 1, p.rank() + 1, p.rank() + 1, p.rank() + 1};
    p.accumulate(v, 4, AccumulateType::kInt64, AccumulateOp::kSum, 0, 0, w);
    p.fence(w);
    if (p.rank() == 0) {
      for (const auto x : mine) EXPECT_EQ(x, 36);  // 1+2+...+8
    }
    p.win_free(w);
  });
}

TEST(Atomics, AccumulateMaxMinReplace) {
  Engine e(ecfg(4));
  e.run([](Process& p) {
    std::vector<double> mine(3, 5.0);
    Window w = p.win_create(mine.data(), mine.size() * sizeof(double));
    p.fence(w);
    if (p.rank() == 1) {
      const double big = 9.0, small = 1.0, exact = 7.5;
      p.accumulate(&big, 1, AccumulateType::kDouble, AccumulateOp::kMax, 0, 0, w);
      p.accumulate(&small, 1, AccumulateType::kDouble, AccumulateOp::kMin, 0, 8, w);
      p.accumulate(&exact, 1, AccumulateType::kDouble, AccumulateOp::kReplace, 0, 16, w);
      p.flush(0, w);
    }
    p.fence(w);
    if (p.rank() == 0) {
      EXPECT_DOUBLE_EQ(mine[0], 9.0);
      EXPECT_DOUBLE_EQ(mine[1], 1.0);
      EXPECT_DOUBLE_EQ(mine[2], 7.5);
    }
    p.win_free(w);
  });
}

TEST(Atomics, FetchAndOpReturnsOldValue) {
  Engine e(ecfg(4));
  e.run([](Process& p) {
    std::uint64_t counter = 0;
    Window w = p.win_create(&counter, sizeof(counter));
    p.fence(w);
    // A classic one-sided ticket counter on rank 0.
    const std::uint64_t one = 1;
    std::uint64_t ticket = 0;
    p.fetch_and_op(&one, &ticket, AccumulateType::kUInt64, AccumulateOp::kSum, 0, 0, w);
    p.flush(0, w);
    EXPECT_LT(ticket, 4u);  // old values 0..3, each exactly once
    std::uint64_t sum = 0;
    p.allreduce_u64(&ticket, &sum, 1, rmasim::ReduceOp::kSum);
    EXPECT_EQ(sum, 0u + 1 + 2 + 3);
    p.fence(w);
    if (p.rank() == 0) EXPECT_EQ(counter, 4u);
    p.win_free(w);
  });
}

TEST(Atomics, GetAccumulateNoOpIsAtomicRead) {
  Engine e(ecfg(2));
  e.run([](Process& p) {
    std::int32_t mine[2] = {static_cast<std::int32_t>(100 + p.rank()), 7};
    Window w = p.win_create(mine, sizeof(mine));
    p.fence(w);
    std::int32_t got[2] = {0, 0};
    p.get_accumulate(nullptr, got, 2, AccumulateType::kInt32, AccumulateOp::kNoOp,
                     1 - p.rank(), 0, w);
    p.flush(1 - p.rank(), w);
    EXPECT_EQ(got[0], 100 + (1 - p.rank()));
    EXPECT_EQ(got[1], 7);
    p.fence(w);
    p.win_free(w);
  });
}

TEST(Atomics, CompareAndSwapOnlyOneWinner) {
  Engine e(ecfg(8));
  e.run([](Process& p) {
    std::int64_t lock_word = -1;
    Window w = p.win_create(&lock_word, sizeof(lock_word));
    p.fence(w);
    const std::int64_t expected = -1;
    const std::int64_t desired = p.rank();
    std::int64_t old = 0;
    p.compare_and_swap(&desired, &expected, &old, AccumulateType::kInt64, 0, 0, w);
    p.flush(0, w);
    const std::uint64_t won = old == -1 ? 1 : 0;
    std::uint64_t winners = 0;
    p.allreduce_u64(&won, &winners, 1, rmasim::ReduceOp::kSum);
    EXPECT_EQ(winners, 1u);  // exactly one rank saw the initial value
    p.fence(w);
    if (p.rank() == 0) EXPECT_GE(lock_word, 0);
    p.win_free(w);
  });
}

TEST(Atomics, CompareAndSwapRejectsDouble) {
  Engine e(ecfg(1));
  EXPECT_THROW(e.run([](Process& p) {
    double x = 0;
    Window w = p.win_create(&x, sizeof(x));
    double d = 1, ex = 0, r = 0;
    p.compare_and_swap(&d, &ex, &r, AccumulateType::kDouble, 0, 0, w);
  }),
               util::ContractError);
}

TEST(Atomics, AccumulateOutOfBoundsThrows) {
  Engine e(ecfg(2));
  EXPECT_THROW(e.run([](Process& p) {
    std::int32_t x = 0;
    Window w = p.win_create(&x, sizeof(x));
    p.barrier();
    std::int32_t v[4] = {1, 2, 3, 4};
    p.accumulate(v, 4, AccumulateType::kInt32, AccumulateOp::kSum, 1 - p.rank(), 0, w);
  }),
               util::ContractError);
}

TEST(FlushLocal, DoesNotWaitForTheTransfer) {
  Engine e(ecfg(2, /*alpha=*/100.0));
  e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(256, &base);
    char buf[64];
    const double t0 = p.now_us();
    p.get(buf, 64, 1 - p.rank(), 0, w);
    p.flush_local(1 - p.rank(), w);
    EXPECT_LT(p.now_us() - t0, 10.0);  // transfer takes 100us; we did not wait
    p.flush(1 - p.rank(), w);
    EXPECT_GE(p.now_us() - t0, 100.0);  // the real flush does
    p.win_free(w);
  });
}

TEST(Pscw, BasicExposureCycle) {
  Engine e(ecfg(2));
  e.run([](Process& p) {
    std::vector<std::uint32_t> mine(16, 1000u + p.rank());
    Window w = p.win_create(mine.data(), mine.size() * sizeof(std::uint32_t));
    p.barrier();
    if (p.rank() == 0) {
      p.post({1}, w);  // expose to rank 1
      p.wait(w);       // until rank 1 completed
    } else {
      p.start({0}, w);
      std::uint32_t got = 0;
      p.get(&got, sizeof(got), 0, 0, w);
      p.complete(w);  // completes the get
      EXPECT_EQ(got, 1000u);
    }
    p.barrier();
    p.win_free(w);
  });
}

TEST(Pscw, ManyOriginsOneTarget) {
  Engine e(ecfg(6));
  e.run([](Process& p) {
    std::vector<std::uint64_t> mine(8);
    std::iota(mine.begin(), mine.end(), 100u * p.rank());
    Window w = p.win_create(mine.data(), mine.size() * sizeof(std::uint64_t));
    p.barrier();
    if (p.rank() == 0) {
      p.post({1, 2, 3, 4, 5}, w);
      p.wait(w);
    } else {
      p.start({0}, w);
      std::uint64_t got = 0;
      p.get(&got, sizeof(got), 0, static_cast<std::size_t>(p.rank()) * 8, w);
      p.complete(w);
      EXPECT_EQ(got, static_cast<std::uint64_t>(p.rank()));
    }
    p.barrier();
    p.win_free(w);
  });
}

TEST(Pscw, StartBlocksUntilPost) {
  Engine e(ecfg(2, /*alpha=*/1.0));
  e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(64, &base);
    if (p.rank() == 0) {
      p.compute_us(500.0);  // delay the post
      p.post({1}, w);
      p.wait(w);
    } else {
      p.start({0}, w);  // must block ~500us of virtual time
      EXPECT_GE(p.now_us(), 500.0);
      p.complete(w);
    }
    p.barrier();
    p.win_free(w);
  });
}

TEST(Pscw, RepeatedEpochs) {
  Engine e(ecfg(2));
  e.run([](Process& p) {
    std::uint32_t value = 0;
    Window w = p.win_create(&value, sizeof(value));
    p.barrier();
    for (std::uint32_t round = 1; round <= 5; ++round) {
      if (p.rank() == 0) {
        value = round * 11;
        p.post({1}, w);
        p.wait(w);
      } else {
        p.start({0}, w);
        std::uint32_t got = 0;
        p.get(&got, sizeof(got), 0, 0, w);
        p.complete(w);
        EXPECT_EQ(got, round * 11);
      }
      p.barrier();
    }
    p.win_free(w);
  });
}

TEST(Pscw, CompleteWithoutStartThrows) {
  Engine e(ecfg(1));
  EXPECT_THROW(e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(64, &base);
    p.complete(w);
  }),
               util::ContractError);
}

TEST(Pscw, WaitWithoutPostThrows) {
  Engine e(ecfg(1));
  EXPECT_THROW(e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(64, &base);
    p.wait(w);
  }),
               util::ContractError);
}

TEST(Pscw, DoublePostThrows) {
  Engine e(ecfg(2));
  EXPECT_THROW(e.run([](Process& p) {
    void* base = nullptr;
    Window w = p.win_allocate(64, &base);
    if (p.rank() == 0) {
      p.post({1}, w);
      p.post({1}, w);
    } else {
      p.start({0}, w);
      p.complete(w);
      p.start({0}, w);
      p.complete(w);
    }
  }),
               util::ContractError);
}

TEST(AccumulateTypeSize, MatchesCTypes) {
  EXPECT_EQ(rmasim::accumulate_type_size(AccumulateType::kInt32), 4u);
  EXPECT_EQ(rmasim::accumulate_type_size(AccumulateType::kInt64), 8u);
  EXPECT_EQ(rmasim::accumulate_type_size(AccumulateType::kUInt64), 8u);
  EXPECT_EQ(rmasim::accumulate_type_size(AccumulateType::kDouble), 8u);
}

}  // namespace
