// Headline invariants: the paper's core claims, pinned as deterministic
// regression tests (modelled time policy => bit-stable results). If a
// change to the cache breaks one of these, the reproduction no longer
// reproduces.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clampi/clampi.h"
#include "netmodel/hierarchy.h"
#include "rt/engine.h"
#include "util/rng.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;

Engine::Config aries_cfg(int nranks) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = net::make_aries_model();
  cfg.time_policy = rmasim::TimePolicy::kModeled;  // deterministic
  return cfg;
}

/// Completion time of Z skewed gets over N distinct 1 KiB rows, cached or
/// not (the repeated-reuse pattern of the paper's motivation, Fig. 2).
double reuse_workload_us(bool cached, std::size_t distinct, std::size_t z) {
  Engine e(aries_cfg(2));
  auto out = std::make_shared<double>(0.0);
  e.run([out, cached, distinct, z](Process& p) {
    constexpr std::size_t kBytes = 1024;
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    cfg.index_entries = 4096;
    cfg.storage_bytes = 8 << 20;
    auto win = CachedWindow::allocate(p, distinct * kBytes, &base, cfg);
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      util::Xoshiro256 rng(9);
      std::vector<std::byte> buf(kBytes);
      const double t0 = p.now_us();
      for (std::size_t i = 0; i < z; ++i) {
        const std::size_t key = rng.bounded(distinct);
        if (cached) {
          win.get(buf.data(), kBytes, 1, key * kBytes);
        } else {
          win.get_nocache(buf.data(), kBytes, 1, key * kBytes);
        }
        win.flush(1);
      }
      *out = p.now_us() - t0;
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
  return *out;
}

TEST(Headline, CachingWinsBigOnHeavyReuse) {
  // "access latencies ... spanning three orders of magnitude" (Sec. I):
  // on a fits-in-cache reuse workload the cached run must win by a wide
  // margin under modelled (pure network vs pure local copy) time.
  const double uncached = reuse_workload_us(false, /*distinct=*/128, /*z=*/4000);
  const double cached = reuse_workload_us(true, 128, 4000);
  EXPECT_GT(uncached / cached, 5.0) << "uncached " << uncached << "us vs " << cached;
}

TEST(Headline, MissOverheadIsBounded) {
  // Weak caching (Sec. III-D2): even with zero reuse — every get distinct,
  // everything evicting/failing through a tiny cache — the cached run may
  // cost only a bounded factor over the raw gets.
  Engine e(aries_cfg(2));
  auto ratio = std::make_shared<double>(0.0);
  e.run([ratio](Process& p) {
    constexpr std::size_t kBytes = 2048;
    constexpr std::size_t kGets = 2000;
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    cfg.index_entries = 64;
    cfg.storage_bytes = 64 << 10;  // tiny: heavy churn
    auto win = CachedWindow::allocate(p, kGets * kBytes, &base, cfg);
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::byte> buf(kBytes);
      double t0 = p.now_us();
      for (std::size_t i = 0; i < kGets; ++i) {
        win.get_nocache(buf.data(), kBytes, 1, i * kBytes);
        win.flush(1);
      }
      const double raw = p.now_us() - t0;
      t0 = p.now_us();
      for (std::size_t i = 0; i < kGets; ++i) {
        win.get(buf.data(), kBytes, 1, i * kBytes);  // all misses
        win.flush(1);
      }
      const double managed = p.now_us() - t0;
      *ratio = managed / raw;
      EXPECT_EQ(win.stats().hitting(), 0u);  // truly zero reuse
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
  // Under the modelled policy management costs the modelled local copies
  // (copy-in at flush) — the bound the paper's design argues for.
  EXPECT_LT(*ratio, 1.5);
  EXPECT_GE(*ratio, 1.0);
}

TEST(Headline, TransparentModeNeedsNoCodeChangeAndNeverLies) {
  // Sec. III-A: transparent mode is semantically invisible. Run the same
  // epoch-structured program against a cached and an uncached window with
  // data changing every epoch; results must match byte for byte.
  Engine e(aries_cfg(2));
  e.run([](Process& p) {
    std::vector<std::uint32_t> mem_a(64), mem_b(64);
    Config cfg;
    cfg.mode = Mode::kTransparent;
    auto cached = CachedWindow::create(p, mem_a.data(), mem_a.size() * 4, cfg);
    const rmasim::Window plain = p.win_create(mem_b.data(), mem_b.size() * 4);
    p.barrier();
    cached.lock_all();
    p.lock_all(plain);
    for (std::uint32_t round = 0; round < 6; ++round) {
      for (std::size_t i = 0; i < 64; ++i) {
        mem_a[i] = mem_b[i] = round * 100 + static_cast<std::uint32_t>(i) + p.rank();
      }
      p.barrier();
      std::uint32_t x = 0, y = 0;
      cached.get(&x, 4, 1 - p.rank(), (round % 64) * 4);
      p.get(&y, 4, 1 - p.rank(), (round % 64) * 4, plain);
      cached.flush_all();
      p.flush_all(plain);
      ASSERT_EQ(x, y) << "round " << round;
      p.barrier();
    }
    cached.unlock_all();
    p.unlock_all(plain);
    p.barrier();
    p.win_free(plain);
    cached.free_window();
  });
}

TEST(Headline, AdaptiveConvergesFromBadStartingPoints) {
  // Sec. III-E / Figs. 9, 15: from a hopelessly undersized configuration
  // the adaptive strategy must reach a geometry that serves the working
  // set with a healthy hit ratio, with a modest number of adjustments.
  Engine e(aries_cfg(2));
  e.run([](Process& p) {
    constexpr std::size_t kDistinct = 2000;
    constexpr std::size_t kBytes = 1024;
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;
    cfg.index_entries = 64;              // 30x too small
    cfg.storage_bytes = 64 << 10;        // 30x too small
    cfg.min_storage_bytes = 64 << 10;
    cfg.adaptive = true;
    cfg.adapt_interval = 1024;
    auto win = CachedWindow::allocate(p, kDistinct * kBytes, &base, cfg);
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::byte> buf(kBytes);
      for (int round = 0; round < 12; ++round) {
        for (std::size_t k = 0; k < kDistinct; ++k) {
          win.get(buf.data(), kBytes, 1, k * kBytes);
          if (k % 16 == 15) win.flush_all();
        }
        win.flush_all();
      }
      EXPECT_GE(win.index_entries(), 2048u);
      EXPECT_GE(win.storage_bytes(), std::size_t{2} << 20);
      EXPECT_LE(win.stats().adjustments, 40u);  // converged, not thrashing
      // Steady state: one full warm round must be nearly all hits.
      const Stats before = win.stats();
      for (std::size_t k = 0; k < kDistinct; ++k) {
        win.get(buf.data(), kBytes, 1, k * kBytes);
      }
      win.flush_all();
      const Stats d = win.stats().delta_since(before);
      EXPECT_GT(static_cast<double>(d.hitting()) / static_cast<double>(d.total_gets),
                0.95);
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

}  // namespace
