// CLaMPI resilience under injected faults: retry/backoff on transient
// failures, cache-fallback for degraded/dead targets, rollback of failed
// cache insertions and seed-reproducible statistics.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "clampi/clampi.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "netmodel/model.h"
#include "rt/engine.h"

namespace {

using namespace clampi;
using rmasim::Engine;
using rmasim::Process;

Engine::Config engine_cfg(int nranks, std::shared_ptr<fault::Injector> inj = nullptr) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(10.0, 0.0);  // 10us per transfer
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  cfg.injector = std::move(inj);
  return cfg;
}

Config cache_cfg(Mode mode) {
  Config cfg;
  cfg.mode = mode;
  cfg.index_entries = 512;
  cfg.storage_bytes = 256 * 1024;
  return cfg;
}

void fill_pattern(void* base, std::size_t n, int rank) {
  auto* b = static_cast<std::uint8_t*>(base);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 7 + rank * 13) & 0xff);
  }
}

std::uint8_t pattern_at(std::size_t i, int rank) {
  return static_cast<std::uint8_t>((i * 7 + rank * 13) & 0xff);
}

struct RunResult {
  Stats stats;
  double elapsed_us = 0.0;
  int errors = 0;
};

// Rank 0 fetches `ngets` distinct 64-byte keys from rank 1 and verifies
// their contents; returns rank 0's stats and elapsed virtual time.
RunResult run_reader(std::shared_ptr<fault::Injector> inj, const Config& ccfg,
                     int ngets = 32) {
  Engine e(engine_cfg(2, std::move(inj)));
  auto out = std::make_shared<RunResult>();
  e.run([out, ccfg, ngets](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      const double t0 = p.now_us();
      std::vector<std::uint8_t> buf(64);
      for (int i = 0; i < ngets; ++i) {
        const std::size_t disp = static_cast<std::size_t>(i) * 64;
        try {
          win.get(buf.data(), 64, 1, disp);
          win.flush_all();
          for (int j = 0; j < 64; ++j) {
            ASSERT_EQ(buf[static_cast<std::size_t>(j)],
                      pattern_at(disp + static_cast<std::size_t>(j), 1));
          }
        } catch (const fault::OpFailedError&) {
          ++out->errors;
        }
      }
      out->elapsed_us = p.now_us() - t0;
      out->stats = win.stats();
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
  return *out;
}

TEST(FaultResilience, TransientFailuresAreRetriedAway) {
  fault::Plan plan;
  plan.fail_everywhere(0.5);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);
  ccfg.max_retries = 16;
  ccfg.retry_backoff_us = 4.0;
  ccfg.retry_backoff_factor = 2.0;
  ccfg.retry_jitter = 0.25;

  const RunResult clean =
      run_reader(std::make_shared<fault::Injector>(fault::Plan{}), ccfg);
  const RunResult faulty = run_reader(std::make_shared<fault::Injector>(plan), ccfg);

  // With p = 0.5 and 16 retries per get, every get eventually succeeds.
  EXPECT_EQ(faulty.errors, 0);
  EXPECT_GT(faulty.stats.injected_faults, 0u);
  EXPECT_GT(faulty.stats.retries, 0u);
  EXPECT_EQ(faulty.stats.retry_giveups, 0u);
  EXPECT_EQ(faulty.stats.injected_faults, faulty.stats.retries);
  // Backoff is charged to virtual time: at least retries * base * (1-jitter)
  // slower than the clean run.
  const double min_backoff =
      static_cast<double>(faulty.stats.retries) * 4.0 * (1.0 - 0.25);
  EXPECT_GE(faulty.elapsed_us, clean.elapsed_us + min_backoff);
}

TEST(FaultResilience, RetryPolicyExhaustionGivesUp) {
  fault::Plan plan;
  plan.fail_everywhere(1.0);  // every network op fails

  Config ccfg = cache_cfg(Mode::kAlwaysCache);
  ccfg.max_retries = 3;
  ccfg.retry_jitter = 0.0;

  const RunResult r = run_reader(std::make_shared<fault::Injector>(plan), ccfg,
                                 /*ngets=*/4);
  EXPECT_EQ(r.errors, 4);
  EXPECT_EQ(r.stats.retries, 12u);        // 3 per get
  EXPECT_EQ(r.stats.retry_giveups, 4u);   // one give-up per get
  EXPECT_EQ(r.stats.injected_faults, 16u);  // 4 initial + 12 retried attempts
}

TEST(FaultResilience, EpochRetryBudgetCapsBackoff) {
  fault::Plan plan;
  plan.fail_everywhere(1.0);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);
  ccfg.max_retries = 100;
  ccfg.retry_backoff_us = 10.0;
  ccfg.retry_backoff_factor = 1.0;
  ccfg.retry_jitter = 0.0;
  ccfg.epoch_retry_budget_us = 35.0;  // room for 3 x 10us backoffs

  const RunResult r = run_reader(std::make_shared<fault::Injector>(plan), ccfg,
                                 /*ngets=*/1);
  EXPECT_EQ(r.errors, 1);
  EXPECT_EQ(r.stats.retries, 3u);
  EXPECT_EQ(r.stats.retry_giveups, 1u);
}

TEST(FaultResilience, CacheFallbackServesDeadTarget) {
  // Rank 1 dies at t = 1000us. Rank 0 warms the cache before the death,
  // then keeps reading: cached keys are served from the cache, uncached
  // keys surface the (unrecoverable) failure.
  fault::Plan plan;
  plan.kill_rank(1, 1000.0);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);
  ccfg.cache_fallback = true;
  ccfg.max_retries = 2;

  Engine e(engine_cfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64);
      // Warm 8 keys while rank 1 is alive. Flush after each get: the
      // origin buffer is reused, and RMA only guarantees its contents
      // (which the cache copies in at flush time) up to the flush.
      for (int i = 0; i < 8; ++i) {
        win.get(buf.data(), 64, 1, static_cast<std::size_t>(i) * 64);
        win.flush_all();
      }
      EXPECT_EQ(win.stats().fallback_hits, 0u);

      p.compute_us(2000.0);  // cross the death instant

      // Cached keys: served from the cache, bytes still correct.
      for (int i = 0; i < 8; ++i) {
        const std::size_t disp = static_cast<std::size_t>(i) * 64;
        win.get(buf.data(), 64, 1, disp);
        for (int j = 0; j < 64; ++j) {
          ASSERT_EQ(buf[static_cast<std::size_t>(j)],
                    pattern_at(disp + static_cast<std::size_t>(j), 1));
        }
      }
      EXPECT_EQ(win.stats().fallback_hits, 8u);

      // An uncached key must fail (kRankDead is not retryable) and leave
      // the cache structurally sound.
      bool failed = false;
      try {
        win.get(buf.data(), 64, 1, 2048);
      } catch (const fault::OpFailedError& err) {
        failed = true;
        EXPECT_EQ(err.failure(), fault::FailureKind::kRankDead);
      }
      EXPECT_TRUE(failed);
      EXPECT_TRUE(win.core().validate());

      // The bypass path is not shielded either.
      EXPECT_THROW(win.get_nocache(buf.data(), 64, 1, 0), fault::OpFailedError);

      // Fallback still works after the failed insert.
      win.get(buf.data(), 64, 1, 0);
      EXPECT_EQ(win.stats().fallback_hits, 9u);
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(FaultResilience, FallbackRequiresOptIn) {
  // Without cache_fallback, a dead target fails even for cached keys.
  fault::Plan plan;
  plan.kill_rank(1, 1000.0);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);  // cache_fallback = false

  Engine e(engine_cfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64);
      win.get(buf.data(), 64, 1, 0);
      win.flush_all();
      p.compute_us(2000.0);
      // The key is cached, so the get is a pure hit and never touches the
      // network — it still succeeds. (Fallback only matters for misses.)
      win.get(buf.data(), 64, 1, 0);
      EXPECT_EQ(win.last_access(), AccessType::kHit);
      // A miss against the dead rank fails.
      EXPECT_THROW(win.get(buf.data(), 64, 1, 1024), fault::OpFailedError);
      EXPECT_EQ(win.stats().fallback_hits, 0u);
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(FaultResilience, FailedInsertRollsBackCleanly) {
  // Every op fails, no retries: each get_c inserts an entry whose data
  // never arrives; the rollback must leave no PENDING debris behind.
  fault::Plan plan;
  plan.fail_everywhere(1.0);

  Config ccfg = cache_cfg(Mode::kAlwaysCache);  // max_retries = 0

  Engine e(engine_cfg(2, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64);
      for (int i = 0; i < 8; ++i) {
        EXPECT_THROW(win.get(buf.data(), 64, 1, static_cast<std::size_t>(i) * 64),
                     fault::OpFailedError);
      }
      EXPECT_EQ(win.core().pending_entries(), 0u);
      EXPECT_EQ(win.core().cached_entries(), 0u);
      EXPECT_TRUE(win.core().validate());
      win.flush_all();  // nothing outstanding: must not throw
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

TEST(FaultResilience, IdenticalSeedsIdenticalStats) {
  fault::Plan plan;
  plan.fail_everywhere(0.4);
  plan.spike_prob = 0.2;
  plan.spike_factor = 2.0;

  Config ccfg = cache_cfg(Mode::kAlwaysCache);
  ccfg.max_retries = 8;

  const RunResult a = run_reader(std::make_shared<fault::Injector>(plan), ccfg);
  const RunResult b = run_reader(std::make_shared<fault::Injector>(plan), ccfg);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.stats.total_gets, b.stats.total_gets);
  EXPECT_EQ(a.stats.injected_faults, b.stats.injected_faults);
  EXPECT_EQ(a.stats.retries, b.stats.retries);
  EXPECT_EQ(a.stats.retry_giveups, b.stats.retry_giveups);
  EXPECT_EQ(a.stats.fallback_hits, b.stats.fallback_hits);
  EXPECT_EQ(a.stats.hits_full, b.stats.hits_full);
  EXPECT_EQ(a.elapsed_us, b.elapsed_us);  // exact: the schedule is counter-based
  EXPECT_GT(a.stats.injected_faults, 0u);
}

TEST(FaultResilience, TransparentModeSurvivesDeadFlush) {
  // A transparent-mode epoch whose flush hits a dead target abandons the
  // dead target's data but stays structurally valid.
  fault::Plan plan;
  plan.kill_rank(1, 50.0);

  Config ccfg = cache_cfg(Mode::kTransparent);

  Engine e(engine_cfg(3, std::make_shared<fault::Injector>(plan)));
  e.run([ccfg](Process& p) {
    void* base = nullptr;
    auto win = CachedWindow::allocate(p, 4096, &base, ccfg);
    fill_pattern(base, 4096, p.rank());
    p.barrier();
    if (p.rank() == 0) {
      win.lock_all();
      std::vector<std::uint8_t> buf(64);
      std::vector<std::uint8_t> buf2(64);
      win.get(buf.data(), 64, 1, 0);  // issued while rank 1 is alive
      win.get(buf2.data(), 64, 2, 0);
      p.compute_us(100.0);  // rank 1 dies with the epoch open
      EXPECT_THROW(win.flush_all(), fault::OpFailedError);
      EXPECT_EQ(win.core().pending_entries(), 0u);
      EXPECT_TRUE(win.core().validate());
      // The next epoch works against the surviving rank.
      win.get(buf.data(), 64, 2, 0);
      win.flush_all();
      for (int j = 0; j < 64; ++j) {
        ASSERT_EQ(buf[static_cast<std::size_t>(j)],
                  pattern_at(static_cast<std::size_t>(j), 2));
      }
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
}

}  // namespace
