// Tests for the adaptive parameter selection (Sec. III-E1).
#include <gtest/gtest.h>

#include "clampi/adaptive.h"
#include "util/align.h"

namespace {

using clampi::AdaptiveTuner;
using clampi::Config;
using clampi::Stats;

Config cfg() {
  Config c;
  c.adaptive = true;
  c.conflict_threshold = 0.05;
  c.capacity_threshold = 0.10;
  c.stable_threshold = 0.60;
  c.sparsity_threshold = 0.25;
  c.free_threshold = 0.50;
  c.min_index_entries = 64;
  c.max_index_entries = 1 << 20;
  c.min_storage_bytes = 64 << 10;
  c.max_storage_bytes = 1 << 30;
  return c;
}

Stats gets(std::uint64_t n) {
  Stats s;
  s.total_gets = n;
  return s;
}

TEST(Adaptive, NoChangeOnQuietWindow) {
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.hits_full = 500;  // healthy but not stable enough to shrink
  const auto dec = t.evaluate(d, 1024, 1 << 20, 1 << 19);
  EXPECT_FALSE(dec.change);
}

TEST(Adaptive, NoChangeWithoutTraffic) {
  AdaptiveTuner t(cfg());
  const auto dec = t.evaluate(Stats{}, 1024, 1 << 20, 0);
  EXPECT_FALSE(dec.change);
}

TEST(Adaptive, ConflictsGrowIndex) {
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.conflicting = 100;  // 10% > 5% threshold
  const auto dec = t.evaluate(d, 1024, 1 << 20, 0);
  EXPECT_TRUE(dec.change);
  EXPECT_EQ(dec.index_entries, 2048u);
  EXPECT_EQ(dec.storage_bytes, std::size_t{1} << 20);
}

TEST(Adaptive, ConflictsBelowThresholdDoNotGrowIndex) {
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.conflicting = 40;  // 4% < 5%
  const auto dec = t.evaluate(d, 1024, 1 << 20, 0);
  EXPECT_EQ(dec.index_entries, 1024u);
}

TEST(Adaptive, SparseIndexShrinksAfterPatience) {
  // q = nonempty/visited below the sparsity threshold signals a sparse
  // I_w that degrades victim selection. Shrinking is hysteretic: it fires
  // only after `shrink_patience` consecutive qualifying windows.
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.eviction_rounds = 50;
  d.visited_slots = 2000;
  d.visited_nonempty = 100;  // q = 0.05 < 0.25
  auto dec = t.evaluate(d, 4096, 1 << 20, 0);
  EXPECT_FALSE(dec.change);  // first window: patience not yet exhausted
  dec = t.evaluate(d, 4096, 1 << 20, 0);
  EXPECT_TRUE(dec.change);
  EXPECT_EQ(dec.index_entries, 2048u);
}

TEST(Adaptive, ShrinkStreakResetsOnHealthyWindow) {
  AdaptiveTuner t(cfg());
  Stats sparse = gets(1000);
  sparse.eviction_rounds = 50;
  sparse.visited_slots = 2000;
  sparse.visited_nonempty = 100;
  EXPECT_FALSE(t.evaluate(sparse, 4096, 1 << 20, 0).change);
  Stats healthy = gets(1000);
  healthy.hits_full = 500;
  EXPECT_FALSE(t.evaluate(healthy, 4096, 1 << 20, 0).change);  // streak reset
  EXPECT_FALSE(t.evaluate(sparse, 4096, 1 << 20, 0).change);   // starts over
  EXPECT_TRUE(t.evaluate(sparse, 4096, 1 << 20, 0).change);
}

TEST(Adaptive, SparsityIgnoredWithoutEvictionRounds) {
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.visited_slots = 0;
  d.visited_nonempty = 0;
  const auto dec = t.evaluate(d, 4096, 1 << 20, 0);
  EXPECT_EQ(dec.index_entries, 4096u);
}

TEST(Adaptive, CapacityAndFailingGrowMemory) {
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.capacity = 70;
  d.failing = 50;
  d.failed_capacity = 50;  // (70+50)/1000 = 12% > 10%
  const auto dec = t.evaluate(d, 1024, 1 << 20, 0);
  EXPECT_TRUE(dec.change);
  EXPECT_EQ(dec.storage_bytes, std::size_t{1} << 21);
}

TEST(Adaptive, IndexInducedFailuresGrowIndexNotMemory) {
  // A full-and-conflicted index produces failing accesses whose cause is
  // I_w; the tuner must grow the index instead of ballooning |S_w|.
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.failing = 200;
  d.failed_index = 200;
  const auto dec = t.evaluate(d, 1024, 1 << 20, 1 << 18);
  EXPECT_TRUE(dec.change);
  EXPECT_EQ(dec.index_entries, 2048u);
  EXPECT_EQ(dec.storage_bytes, std::size_t{1} << 20);
}

TEST(Adaptive, StableWorkingSetWithFreeSpaceShrinksMemory) {
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.hits_full = 700;  // 70% > 60% stable
  // 87.5% free > 75% free threshold; needs two qualifying windows.
  auto dec = t.evaluate(d, 1024, 1 << 20, (1 << 20) * 7 / 8);
  EXPECT_FALSE(dec.change);
  dec = t.evaluate(d, 1024, 1 << 20, (1 << 20) * 7 / 8);
  EXPECT_TRUE(dec.change);
  EXPECT_EQ(dec.storage_bytes, std::size_t{1} << 19);
}

TEST(Adaptive, StableButFullDoesNotShrink) {
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.hits_full = 700;
  const auto dec = t.evaluate(d, 1024, 1 << 20, (1 << 20) / 4);  // only 25% free
  EXPECT_FALSE(dec.change);
}

TEST(Adaptive, GrowthWinsOverShrink) {
  // Capacity pressure and a stable working set cannot both hold, but if
  // the ratios say "grow" the tuner must never shrink in the same window.
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.capacity = 200;
  d.hits_full = 700;
  const auto dec = t.evaluate(d, 1024, 1 << 20, 1 << 19);
  EXPECT_GT(dec.storage_bytes, std::size_t{1} << 20);
}

TEST(Adaptive, BothStructuresCanGrowTogether) {
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.conflicting = 100;
  d.capacity = 150;
  const auto dec = t.evaluate(d, 1024, 1 << 20, 0);
  EXPECT_EQ(dec.index_entries, 2048u);
  EXPECT_EQ(dec.storage_bytes, std::size_t{1} << 21);
  EXPECT_STREQ(dec.reason, "grow_both");
}

TEST(Adaptive, ClampsAtConfiguredBounds) {
  AdaptiveTuner t(cfg());
  Stats d = gets(1000);
  d.conflicting = 500;
  d.capacity = 500;
  auto dec = t.evaluate(d, 1 << 20, 1 << 30, 0);  // already at max
  EXPECT_FALSE(dec.change);

  Stats shrink = gets(1000);
  shrink.eviction_rounds = 10;
  shrink.visited_slots = 100;
  shrink.visited_nonempty = 1;
  shrink.hits_full = 900;
  dec = t.evaluate(shrink, 64, 64 << 10, 60 << 10);  // already at min
  EXPECT_FALSE(dec.change);
}

TEST(Adaptive, CustomFactorsRespected) {
  Config c = cfg();
  c.index_increase_factor = 4.0;
  c.memory_increase_factor = 3.0;
  AdaptiveTuner t(c);
  Stats d = gets(100);
  d.conflicting = 50;
  d.capacity = 50;
  const auto dec = t.evaluate(d, 100, 1 << 20, 0);
  EXPECT_EQ(dec.index_entries, 400u);
  EXPECT_EQ(dec.storage_bytes, clampi::util::round_up(3u << 20, 64));
}

}  // namespace
