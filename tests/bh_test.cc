// Tests for the Barnes-Hut application substrate: octree invariants,
// force accuracy vs direct summation, cache backends, invalidation.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>

#include "bh/octree.h"
#include "bh/solver.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "netmodel/model.h"
#include "rt/engine.h"

namespace {

using namespace clampi;
using bh::CacheBackend;
using bh::DistributedBarnesHut;
using bh::NativeBlockCache;
using bh::Octree;
using bh::SharedBodies;
using bh::SolverConfig;
using bh::Vec3;
using rmasim::Engine;
using rmasim::Process;

Engine::Config engine_cfg(int nranks) {
  Engine::Config cfg;
  cfg.nranks = nranks;
  cfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
  cfg.time_policy = rmasim::TimePolicy::kModeled;
  return cfg;
}

TEST(Octree, EmptyAndSingleBody) {
  Octree t;
  t.build({}, {});
  EXPECT_TRUE(t.empty());
  t.build({Vec3{1, 2, 3}}, {5.0});
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.nodes()[0].is_leaf());
  EXPECT_DOUBLE_EQ(t.payloads()[0].mass, 5.0);
  EXPECT_DOUBLE_EQ(t.payloads()[0].comx, 1.0);
}

TEST(Octree, MassConservation) {
  SharedBodies sh(500, 3);
  Octree t;
  t.build(sh.pos, sh.mass);
  const double total = std::accumulate(sh.mass.begin(), sh.mass.end(), 0.0);
  EXPECT_NEAR(t.payloads()[Octree::kRoot].mass, total, 1e-12);
}

TEST(Octree, RootComIsGlobalCom) {
  SharedBodies sh(200, 4);
  Octree t;
  t.build(sh.pos, sh.mass);
  Vec3 com{};
  double m = 0;
  for (std::size_t i = 0; i < sh.pos.size(); ++i) {
    com += sh.pos[i] * sh.mass[i];
    m += sh.mass[i];
  }
  com *= 1.0 / m;
  EXPECT_NEAR(t.payloads()[0].comx, com.x, 1e-12);
  EXPECT_NEAR(t.payloads()[0].comy, com.y, 1e-12);
  EXPECT_NEAR(t.payloads()[0].comz, com.z, 1e-12);
}

TEST(Octree, EveryBodyInExactlyOneLeaf) {
  SharedBodies sh(300, 5);
  Octree t;
  t.build(sh.pos, sh.mass);
  std::set<std::int32_t> seen;
  for (const auto& n : t.nodes()) {
    if (n.body >= 0) {
      EXPECT_TRUE(seen.insert(n.body).second) << "body " << n.body << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), sh.pos.size());
}

TEST(Octree, ChildrenNestedInParents) {
  SharedBodies sh(128, 6);
  Octree t;
  t.build(sh.pos, sh.mass);
  for (const auto& n : t.nodes()) {
    for (const auto c : n.child) {
      if (c < 0) continue;
      const auto& ch = t.nodes()[static_cast<std::size_t>(c)];
      EXPECT_NEAR(ch.half * 2.0, n.half, 1e-12);
      EXPECT_LE(std::abs(ch.center.x - n.center.x), n.half);
      EXPECT_LE(std::abs(ch.center.y - n.center.y), n.half);
      EXPECT_LE(std::abs(ch.center.z - n.center.z), n.half);
    }
  }
}

TEST(Octree, DeterministicAcrossBuilds) {
  SharedBodies sh(256, 7);
  Octree a, b;
  a.build(sh.pos, sh.mass);
  b.build(sh.pos, sh.mass);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.nodes()[i].body, b.nodes()[i].body);
    EXPECT_EQ(a.nodes()[i].count, b.nodes()[i].count);
  }
}

TEST(Octree, NodeCountLinearInBodies) {
  SharedBodies sh(2000, 8);
  Octree t;
  t.build(sh.pos, sh.mass);
  EXPECT_LT(t.size(), 4 * sh.pos.size());
  EXPECT_GE(t.size(), sh.pos.size());
}

// --- force accuracy ---

class BhForceAccuracy : public ::testing::TestWithParam<int /*nranks*/> {};

TEST_P(BhForceAccuracy, ThetaZeroMatchesDirectSummation) {
  // theta = 0 never opens the MAC: the traversal degenerates to exact
  // pairwise interaction and must match the O(N^2) reference.
  const int nranks = GetParam();
  Engine e(engine_cfg(nranks));
  auto shared = std::make_shared<SharedBodies>(120, 11);
  e.run([shared](Process& p) {
    SolverConfig cfg;
    cfg.nbodies = shared->pos.size();
    cfg.theta = 0.0;
    cfg.dt = 0.0;  // keep bodies fixed so the published tree stays current
    cfg.softening = 1e-3;
    cfg.backend = CacheBackend::kClampi;
    cfg.clampi_cfg.mode = Mode::kAlwaysCache;
    DistributedBarnesHut solver(p, shared, cfg);
    p.barrier();
    if (p.rank() == 0) shared->tree.build(shared->pos, shared->mass);
    p.barrier();
    // publish happens in step(); for accel_of we need payloads up:
    // run one step first (also exercises the full pipeline), then check.
    solver.step();
    for (std::size_t b = solver.first_body(); b < solver.last_body(); b += 7) {
      const Vec3 got = solver.accel_of(static_cast<std::int32_t>(b));
      const Vec3 want = bh::direct_accel(*shared, static_cast<std::int32_t>(b), 1e-3);
      EXPECT_NEAR(got.x, want.x, 1e-9 + 1e-6 * std::abs(want.x));
      EXPECT_NEAR(got.y, want.y, 1e-9 + 1e-6 * std::abs(want.y));
      EXPECT_NEAR(got.z, want.z, 1e-9 + 1e-6 * std::abs(want.z));
    }
    p.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, BhForceAccuracy, ::testing::Values(1, 3, 4));

TEST(BhForce, ModerateThetaApproximatesWell) {
  Engine e(engine_cfg(4));
  auto shared = std::make_shared<SharedBodies>(400, 13);
  e.run([shared](Process& p) {
    SolverConfig cfg;
    cfg.nbodies = shared->pos.size();
    cfg.theta = 0.5;
    cfg.dt = 0.0;  // keep bodies fixed so the published tree stays current
    cfg.backend = CacheBackend::kNone;
    DistributedBarnesHut solver(p, shared, cfg);
    solver.step();
    double max_rel = 0.0;
    for (std::size_t b = solver.first_body(); b < solver.last_body(); b += 11) {
      const Vec3 got = solver.accel_of(static_cast<std::int32_t>(b));
      const Vec3 want = bh::direct_accel(*shared, static_cast<std::int32_t>(b), 1e-3);
      const double rel = (got - want).norm() / (want.norm() + 1e-12);
      max_rel = std::max(max_rel, rel);
    }
    EXPECT_LT(max_rel, 0.05);  // BH with theta=0.5 is a few-% approximation
    p.barrier();
  });
}

TEST(BhBackends, AllBackendsComputeIdenticalForces) {
  Engine e(engine_cfg(4));
  auto s1 = std::make_shared<SharedBodies>(150, 17);
  auto s2 = std::make_shared<SharedBodies>(150, 17);
  auto s3 = std::make_shared<SharedBodies>(150, 17);
  e.run([&](Process& p) {
    auto run_backend = [&p](std::shared_ptr<SharedBodies> sh, CacheBackend be) {
      SolverConfig cfg;
      cfg.nbodies = sh->pos.size();
      cfg.backend = be;
      cfg.clampi_cfg.mode = Mode::kAlwaysCache;
      cfg.native_mem_bytes = 64 * 1024;
      cfg.native_block_bytes = 256;
      DistributedBarnesHut solver(p, sh, cfg);
      solver.step();
      solver.step();
    };
    run_backend(s1, CacheBackend::kNone);
    run_backend(s2, CacheBackend::kClampi);
    run_backend(s3, CacheBackend::kNative);
  });
  for (std::size_t i = 0; i < s1->pos.size(); ++i) {
    EXPECT_NEAR(s1->pos[i].x, s2->pos[i].x, 1e-12);
    EXPECT_NEAR(s1->pos[i].x, s3->pos[i].x, 1e-12);
    EXPECT_NEAR(s1->vel[i].y, s2->vel[i].y, 1e-12);
    EXPECT_NEAR(s1->vel[i].y, s3->vel[i].y, 1e-12);
  }
}

TEST(BhCaching, ClampiGetsHitsOnReusedNodes) {
  Engine e(engine_cfg(4));
  auto shared = std::make_shared<SharedBodies>(600, 19);
  e.run([shared](Process& p) {
    SolverConfig cfg;
    cfg.nbodies = shared->pos.size();
    cfg.backend = CacheBackend::kClampi;
    cfg.clampi_cfg.mode = Mode::kUserDefined;
    cfg.clampi_cfg.index_entries = 1 << 14;
    cfg.clampi_cfg.storage_bytes = 4 << 20;
    DistributedBarnesHut solver(p, shared, cfg);
    const auto rep = solver.step();
    const auto* st = solver.clampi_stats();
    ASSERT_NE(st, nullptr);
    EXPECT_GT(rep.remote_gets, 0u);
    // Top-of-tree nodes are visited once per owned body: heavy reuse.
    EXPECT_GT(st->hit_ratio(), 0.5);
    // User-defined mode: invalidated once per step.
    EXPECT_EQ(st->invalidations, 1u);
    p.barrier();
  });
}

TEST(BhCaching, SkipDeadRanksDropsDeadOwnersPayloads) {
  // Rank 3 is dead from the start; with skip_dead_ranks payload fetches
  // against it return a zero-mass cell (the traversal skips it, forces
  // lose that rank's share of the mass) instead of aborting the step.
  fault::Plan plan;
  plan.kill_rank(3, 0.0);
  Engine::Config ec = engine_cfg(4);
  ec.injector = std::make_shared<fault::Injector>(plan);
  Engine e(ec);
  auto shared = std::make_shared<SharedBodies>(400, 23);
  auto dropped = std::make_shared<std::vector<std::uint64_t>>(4, 0);
  e.run([&](Process& p) {
    SolverConfig cfg;
    cfg.nbodies = shared->pos.size();
    cfg.backend = CacheBackend::kClampi;
    cfg.clampi_cfg.mode = Mode::kAlwaysCache;
    cfg.skip_dead_ranks = true;
    DistributedBarnesHut solver(p, shared, cfg);
    const auto rep = solver.step();
    (*dropped)[static_cast<std::size_t>(p.rank())] = rep.dropped_gets;
    // The step completes with finite state everywhere.
    for (std::size_t b = solver.first_body(); b < solver.last_body(); ++b) {
      EXPECT_TRUE(std::isfinite(shared->pos[b].x));
      EXPECT_TRUE(std::isfinite(shared->vel[b].y));
    }
    p.barrier();
  });
  EXPECT_GT((*dropped)[0] + (*dropped)[1] + (*dropped)[2], 0u);
}

TEST(BhCaching, AccessHistogramShowsReuse) {
  // Fig. 2 of the paper: the same remote data is fetched many times.
  Engine e(engine_cfg(4));
  auto shared = std::make_shared<SharedBodies>(500, 23);
  e.run([shared](Process& p) {
    SolverConfig cfg;
    cfg.nbodies = shared->pos.size();
    cfg.backend = CacheBackend::kNone;
    cfg.track_access_histogram = true;
    DistributedBarnesHut solver(p, shared, cfg);
    solver.step();
    const auto& counts = solver.access_counts();
    ASSERT_FALSE(counts.empty());
    std::uint32_t max_rep = 0;
    for (const auto& [k, c] : counts) max_rep = std::max(max_rep, c);
    // ~125 owned bodies all open the root-adjacent remote nodes.
    EXPECT_GT(max_rep, 50u);
    p.barrier();
  });
}

// --- native block cache ---

TEST(NativeCache, HitsOnRepeatedBlocks) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    const rmasim::Window w = p.win_allocate(4096, &base);
    auto* data = static_cast<std::uint8_t*>(base);
    for (int i = 0; i < 4096; ++i) data[i] = static_cast<std::uint8_t>(i * 3 + p.rank());
    p.barrier();
    NativeBlockCache cache(p, w, 2048, 256);
    std::uint8_t buf[64];
    cache.get(buf, 64, 1 - p.rank(), 128);
    EXPECT_EQ(cache.stats().block_misses, 1u);
    cache.get(buf, 64, 1 - p.rank(), 160);  // same block
    EXPECT_EQ(cache.stats().block_hits, 1u);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(buf[i], static_cast<std::uint8_t>((160 + i) * 3 + (1 - p.rank())));
    }
    p.barrier();
    p.win_free(w);
  });
}

TEST(NativeCache, MultiBlockRequestsSpanLines) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    const rmasim::Window w = p.win_allocate(4096, &base);
    auto* data = static_cast<std::uint8_t*>(base);
    for (int i = 0; i < 4096; ++i) data[i] = static_cast<std::uint8_t>(i ^ p.rank());
    p.barrier();
    NativeBlockCache cache(p, w, 4096, 256);
    std::vector<std::uint8_t> buf(700);
    cache.get(buf.data(), buf.size(), 1 - p.rank(), 100);  // spans 4 blocks
    EXPECT_GE(cache.stats().block_misses, 3u);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>((100 + i) ^ (1 - p.rank())));
    }
    p.barrier();
    p.win_free(w);
  });
}

TEST(NativeCache, DirectMappingConflictsEvict) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    const rmasim::Window w = p.win_allocate(64 * 1024, &base);
    p.barrier();
    NativeBlockCache cache(p, w, 512, 256);  // only 2 lines
    std::uint8_t buf[16];
    // Touch many distinct blocks: with 2 lines nearly everything misses.
    for (int i = 0; i < 32; ++i) cache.get(buf, 16, 1 - p.rank(), i * 256);
    EXPECT_GT(cache.stats().block_misses, 25u);
    // Re-touch: still mostly misses (working set >> cache).
    for (int i = 0; i < 32; ++i) cache.get(buf, 16, 1 - p.rank(), i * 256);
    EXPECT_GT(cache.stats().block_misses, 50u);
    p.barrier();
    p.win_free(w);
  });
}

TEST(NativeCache, InvalidateDropsBlocks) {
  Engine e(engine_cfg(2));
  e.run([](Process& p) {
    void* base = nullptr;
    const rmasim::Window w = p.win_allocate(4096, &base);
    p.barrier();
    NativeBlockCache cache(p, w, 4096, 256);
    std::uint8_t buf[16];
    cache.get(buf, 16, 1 - p.rank(), 0);
    cache.invalidate();
    cache.get(buf, 16, 1 - p.rank(), 0);
    EXPECT_EQ(cache.stats().block_misses, 2u);
    EXPECT_EQ(cache.stats().block_hits, 0u);
    p.barrier();
    p.win_free(w);
  });
}

TEST(BhDynamics, EnergyStaysBoundedOverSteps) {
  Engine e(engine_cfg(2));
  auto shared = std::make_shared<SharedBodies>(100, 29);
  e.run([shared](Process& p) {
    SolverConfig cfg;
    cfg.nbodies = shared->pos.size();
    cfg.dt = 0.001;
    cfg.backend = CacheBackend::kClampi;
    cfg.clampi_cfg.mode = Mode::kUserDefined;
    DistributedBarnesHut solver(p, shared, cfg);
    for (int s = 0; s < 5; ++s) solver.step();
    p.barrier();
  });
  // Sanity: the system did not blow up numerically.
  for (const auto& v : shared->vel) {
    EXPECT_TRUE(std::isfinite(v.x));
    EXPECT_LT(v.norm(), 100.0);
  }
}

}  // namespace
