# Empty dependencies file for clampi_resize_test.
# This may be replaced when dependencies are built.
