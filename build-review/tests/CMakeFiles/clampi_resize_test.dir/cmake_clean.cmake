file(REMOVE_RECURSE
  "CMakeFiles/clampi_resize_test.dir/clampi_resize_test.cc.o"
  "CMakeFiles/clampi_resize_test.dir/clampi_resize_test.cc.o.d"
  "clampi_resize_test"
  "clampi_resize_test.pdb"
  "clampi_resize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_resize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
