# Empty dependencies file for rt_clock_test.
# This may be replaced when dependencies are built.
