file(REMOVE_RECURSE
  "CMakeFiles/rt_clock_test.dir/rt_clock_test.cc.o"
  "CMakeFiles/rt_clock_test.dir/rt_clock_test.cc.o.d"
  "rt_clock_test"
  "rt_clock_test.pdb"
  "rt_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
