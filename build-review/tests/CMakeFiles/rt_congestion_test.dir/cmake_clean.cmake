file(REMOVE_RECURSE
  "CMakeFiles/rt_congestion_test.dir/rt_congestion_test.cc.o"
  "CMakeFiles/rt_congestion_test.dir/rt_congestion_test.cc.o.d"
  "rt_congestion_test"
  "rt_congestion_test.pdb"
  "rt_congestion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_congestion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
