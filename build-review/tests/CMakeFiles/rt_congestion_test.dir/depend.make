# Empty dependencies file for rt_congestion_test.
# This may be replaced when dependencies are built.
