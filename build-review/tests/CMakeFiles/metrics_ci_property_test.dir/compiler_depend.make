# Empty compiler generated dependencies file for metrics_ci_property_test.
# This may be replaced when dependencies are built.
