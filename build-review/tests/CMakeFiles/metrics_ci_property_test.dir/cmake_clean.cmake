file(REMOVE_RECURSE
  "CMakeFiles/metrics_ci_property_test.dir/metrics_ci_property_test.cc.o"
  "CMakeFiles/metrics_ci_property_test.dir/metrics_ci_property_test.cc.o.d"
  "metrics_ci_property_test"
  "metrics_ci_property_test.pdb"
  "metrics_ci_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_ci_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
