file(REMOVE_RECURSE
  "CMakeFiles/integration_semantics_test.dir/integration_semantics_test.cc.o"
  "CMakeFiles/integration_semantics_test.dir/integration_semantics_test.cc.o.d"
  "integration_semantics_test"
  "integration_semantics_test.pdb"
  "integration_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
