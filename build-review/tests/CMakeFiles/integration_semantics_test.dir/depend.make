# Empty dependencies file for integration_semantics_test.
# This may be replaced when dependencies are built.
