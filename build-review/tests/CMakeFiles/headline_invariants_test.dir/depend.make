# Empty dependencies file for headline_invariants_test.
# This may be replaced when dependencies are built.
