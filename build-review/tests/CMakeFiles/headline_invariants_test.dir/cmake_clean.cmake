file(REMOVE_RECURSE
  "CMakeFiles/headline_invariants_test.dir/headline_invariants_test.cc.o"
  "CMakeFiles/headline_invariants_test.dir/headline_invariants_test.cc.o.d"
  "headline_invariants_test"
  "headline_invariants_test.pdb"
  "headline_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
