file(REMOVE_RECURSE
  "CMakeFiles/clampi_hotpath_test.dir/clampi_hotpath_test.cc.o"
  "CMakeFiles/clampi_hotpath_test.dir/clampi_hotpath_test.cc.o.d"
  "clampi_hotpath_test"
  "clampi_hotpath_test.pdb"
  "clampi_hotpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_hotpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
