# Empty dependencies file for clampi_hotpath_test.
# This may be replaced when dependencies are built.
