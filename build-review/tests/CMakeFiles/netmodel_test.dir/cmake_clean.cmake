file(REMOVE_RECURSE
  "CMakeFiles/netmodel_test.dir/netmodel_test.cc.o"
  "CMakeFiles/netmodel_test.dir/netmodel_test.cc.o.d"
  "netmodel_test"
  "netmodel_test.pdb"
  "netmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
