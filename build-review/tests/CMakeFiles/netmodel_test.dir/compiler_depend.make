# Empty compiler generated dependencies file for netmodel_test.
# This may be replaced when dependencies are built.
