# Empty dependencies file for rt_window_extra_test.
# This may be replaced when dependencies are built.
