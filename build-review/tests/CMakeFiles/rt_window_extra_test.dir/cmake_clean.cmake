file(REMOVE_RECURSE
  "CMakeFiles/rt_window_extra_test.dir/rt_window_extra_test.cc.o"
  "CMakeFiles/rt_window_extra_test.dir/rt_window_extra_test.cc.o.d"
  "rt_window_extra_test"
  "rt_window_extra_test.pdb"
  "rt_window_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_window_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
