file(REMOVE_RECURSE
  "CMakeFiles/clampi_edge_cases_test.dir/clampi_edge_cases_test.cc.o"
  "CMakeFiles/clampi_edge_cases_test.dir/clampi_edge_cases_test.cc.o.d"
  "clampi_edge_cases_test"
  "clampi_edge_cases_test.pdb"
  "clampi_edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
