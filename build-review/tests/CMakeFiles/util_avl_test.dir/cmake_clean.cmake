file(REMOVE_RECURSE
  "CMakeFiles/util_avl_test.dir/util_avl_test.cc.o"
  "CMakeFiles/util_avl_test.dir/util_avl_test.cc.o.d"
  "util_avl_test"
  "util_avl_test.pdb"
  "util_avl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_avl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
