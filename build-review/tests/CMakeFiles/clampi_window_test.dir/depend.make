# Empty dependencies file for clampi_window_test.
# This may be replaced when dependencies are built.
