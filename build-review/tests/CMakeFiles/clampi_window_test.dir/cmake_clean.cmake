file(REMOVE_RECURSE
  "CMakeFiles/clampi_window_test.dir/clampi_window_test.cc.o"
  "CMakeFiles/clampi_window_test.dir/clampi_window_test.cc.o.d"
  "clampi_window_test"
  "clampi_window_test.pdb"
  "clampi_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
