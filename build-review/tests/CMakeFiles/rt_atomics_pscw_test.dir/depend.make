# Empty dependencies file for rt_atomics_pscw_test.
# This may be replaced when dependencies are built.
