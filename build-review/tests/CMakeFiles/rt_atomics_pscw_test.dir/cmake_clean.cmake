file(REMOVE_RECURSE
  "CMakeFiles/rt_atomics_pscw_test.dir/rt_atomics_pscw_test.cc.o"
  "CMakeFiles/rt_atomics_pscw_test.dir/rt_atomics_pscw_test.cc.o.d"
  "rt_atomics_pscw_test"
  "rt_atomics_pscw_test.pdb"
  "rt_atomics_pscw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_atomics_pscw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
