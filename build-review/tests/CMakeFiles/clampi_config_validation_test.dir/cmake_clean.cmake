file(REMOVE_RECURSE
  "CMakeFiles/clampi_config_validation_test.dir/clampi_config_validation_test.cc.o"
  "CMakeFiles/clampi_config_validation_test.dir/clampi_config_validation_test.cc.o.d"
  "clampi_config_validation_test"
  "clampi_config_validation_test.pdb"
  "clampi_config_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_config_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
