# Empty compiler generated dependencies file for clampi_config_validation_test.
# This may be replaced when dependencies are built.
