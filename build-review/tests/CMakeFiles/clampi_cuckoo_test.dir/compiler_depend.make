# Empty compiler generated dependencies file for clampi_cuckoo_test.
# This may be replaced when dependencies are built.
