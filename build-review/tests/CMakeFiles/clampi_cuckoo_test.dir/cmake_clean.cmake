file(REMOVE_RECURSE
  "CMakeFiles/clampi_cuckoo_test.dir/clampi_cuckoo_test.cc.o"
  "CMakeFiles/clampi_cuckoo_test.dir/clampi_cuckoo_test.cc.o.d"
  "clampi_cuckoo_test"
  "clampi_cuckoo_test.pdb"
  "clampi_cuckoo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_cuckoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
