file(REMOVE_RECURSE
  "CMakeFiles/clampi_adaptive_test.dir/clampi_adaptive_test.cc.o"
  "CMakeFiles/clampi_adaptive_test.dir/clampi_adaptive_test.cc.o.d"
  "clampi_adaptive_test"
  "clampi_adaptive_test.pdb"
  "clampi_adaptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
