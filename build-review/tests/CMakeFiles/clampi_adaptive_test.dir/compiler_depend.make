# Empty compiler generated dependencies file for clampi_adaptive_test.
# This may be replaced when dependencies are built.
