file(REMOVE_RECURSE
  "CMakeFiles/clampi_trace_test.dir/clampi_trace_test.cc.o"
  "CMakeFiles/clampi_trace_test.dir/clampi_trace_test.cc.o.d"
  "clampi_trace_test"
  "clampi_trace_test.pdb"
  "clampi_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
