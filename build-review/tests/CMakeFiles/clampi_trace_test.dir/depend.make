# Empty dependencies file for clampi_trace_test.
# This may be replaced when dependencies are built.
