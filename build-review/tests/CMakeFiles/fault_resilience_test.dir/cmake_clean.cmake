file(REMOVE_RECURSE
  "CMakeFiles/fault_resilience_test.dir/fault_resilience_test.cc.o"
  "CMakeFiles/fault_resilience_test.dir/fault_resilience_test.cc.o.d"
  "fault_resilience_test"
  "fault_resilience_test.pdb"
  "fault_resilience_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_resilience_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
