# Empty compiler generated dependencies file for fault_resilience_test.
# This may be replaced when dependencies are built.
