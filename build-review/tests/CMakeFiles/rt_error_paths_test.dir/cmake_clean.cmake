file(REMOVE_RECURSE
  "CMakeFiles/rt_error_paths_test.dir/rt_error_paths_test.cc.o"
  "CMakeFiles/rt_error_paths_test.dir/rt_error_paths_test.cc.o.d"
  "rt_error_paths_test"
  "rt_error_paths_test.pdb"
  "rt_error_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_error_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
