file(REMOVE_RECURSE
  "CMakeFiles/rt_comm_test.dir/rt_comm_test.cc.o"
  "CMakeFiles/rt_comm_test.dir/rt_comm_test.cc.o.d"
  "rt_comm_test"
  "rt_comm_test.pdb"
  "rt_comm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_comm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
