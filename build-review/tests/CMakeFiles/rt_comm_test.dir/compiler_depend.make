# Empty compiler generated dependencies file for rt_comm_test.
# This may be replaced when dependencies are built.
