# Empty compiler generated dependencies file for bh_test.
# This may be replaced when dependencies are built.
