file(REMOVE_RECURSE
  "CMakeFiles/bh_test.dir/bh_test.cc.o"
  "CMakeFiles/bh_test.dir/bh_test.cc.o.d"
  "bh_test"
  "bh_test.pdb"
  "bh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
