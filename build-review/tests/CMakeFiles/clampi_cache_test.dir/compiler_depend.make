# Empty compiler generated dependencies file for clampi_cache_test.
# This may be replaced when dependencies are built.
