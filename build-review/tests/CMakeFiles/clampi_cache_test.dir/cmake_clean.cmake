file(REMOVE_RECURSE
  "CMakeFiles/clampi_cache_test.dir/clampi_cache_test.cc.o"
  "CMakeFiles/clampi_cache_test.dir/clampi_cache_test.cc.o.d"
  "clampi_cache_test"
  "clampi_cache_test.pdb"
  "clampi_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
