# Empty compiler generated dependencies file for clampi_storage_diff_test.
# This may be replaced when dependencies are built.
