file(REMOVE_RECURSE
  "CMakeFiles/clampi_storage_diff_test.dir/clampi_storage_diff_test.cc.o"
  "CMakeFiles/clampi_storage_diff_test.dir/clampi_storage_diff_test.cc.o.d"
  "clampi_storage_diff_test"
  "clampi_storage_diff_test.pdb"
  "clampi_storage_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_storage_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
