# Empty compiler generated dependencies file for rt_engine_test.
# This may be replaced when dependencies are built.
