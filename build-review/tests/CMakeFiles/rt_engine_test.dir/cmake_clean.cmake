file(REMOVE_RECURSE
  "CMakeFiles/rt_engine_test.dir/rt_engine_test.cc.o"
  "CMakeFiles/rt_engine_test.dir/rt_engine_test.cc.o.d"
  "rt_engine_test"
  "rt_engine_test.pdb"
  "rt_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
