# Empty dependencies file for clampi_typed_mismatch_test.
# This may be replaced when dependencies are built.
