file(REMOVE_RECURSE
  "CMakeFiles/clampi_typed_mismatch_test.dir/clampi_typed_mismatch_test.cc.o"
  "CMakeFiles/clampi_typed_mismatch_test.dir/clampi_typed_mismatch_test.cc.o.d"
  "clampi_typed_mismatch_test"
  "clampi_typed_mismatch_test.pdb"
  "clampi_typed_mismatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_typed_mismatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
