# Empty compiler generated dependencies file for fig15_lcc_params.
# This may be replaced when dependencies are built.
