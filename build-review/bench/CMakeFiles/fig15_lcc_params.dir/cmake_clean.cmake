file(REMOVE_RECURSE
  "CMakeFiles/fig15_lcc_params.dir/fig15_lcc_params.cc.o"
  "CMakeFiles/fig15_lcc_params.dir/fig15_lcc_params.cc.o.d"
  "fig15_lcc_params"
  "fig15_lcc_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_lcc_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
