file(REMOVE_RECURSE
  "CMakeFiles/fig13_bh_stats.dir/fig13_bh_stats.cc.o"
  "CMakeFiles/fig13_bh_stats.dir/fig13_bh_stats.cc.o.d"
  "fig13_bh_stats"
  "fig13_bh_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_bh_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
