# Empty compiler generated dependencies file for fig13_bh_stats.
# This may be replaced when dependencies are built.
