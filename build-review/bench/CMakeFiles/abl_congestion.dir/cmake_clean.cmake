file(REMOVE_RECURSE
  "CMakeFiles/abl_congestion.dir/abl_congestion.cc.o"
  "CMakeFiles/abl_congestion.dir/abl_congestion.cc.o.d"
  "abl_congestion"
  "abl_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
