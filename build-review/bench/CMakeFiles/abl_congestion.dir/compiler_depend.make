# Empty compiler generated dependencies file for abl_congestion.
# This may be replaced when dependencies are built.
