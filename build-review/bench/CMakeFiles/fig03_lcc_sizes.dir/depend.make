# Empty dependencies file for fig03_lcc_sizes.
# This may be replaced when dependencies are built.
