file(REMOVE_RECURSE
  "CMakeFiles/fig03_lcc_sizes.dir/fig03_lcc_sizes.cc.o"
  "CMakeFiles/fig03_lcc_sizes.dir/fig03_lcc_sizes.cc.o.d"
  "fig03_lcc_sizes"
  "fig03_lcc_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_lcc_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
