# Empty dependencies file for fig01_latency_hierarchy.
# This may be replaced when dependencies are built.
