file(REMOVE_RECURSE
  "CMakeFiles/fig01_latency_hierarchy.dir/fig01_latency_hierarchy.cc.o"
  "CMakeFiles/fig01_latency_hierarchy.dir/fig01_latency_hierarchy.cc.o.d"
  "fig01_latency_hierarchy"
  "fig01_latency_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_latency_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
