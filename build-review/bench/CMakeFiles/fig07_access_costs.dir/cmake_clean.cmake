file(REMOVE_RECURSE
  "CMakeFiles/fig07_access_costs.dir/fig07_access_costs.cc.o"
  "CMakeFiles/fig07_access_costs.dir/fig07_access_costs.cc.o.d"
  "fig07_access_costs"
  "fig07_access_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_access_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
