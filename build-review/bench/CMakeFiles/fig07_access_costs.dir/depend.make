# Empty dependencies file for fig07_access_costs.
# This may be replaced when dependencies are built.
