# Empty dependencies file for fig11_victim_stats.
# This may be replaced when dependencies are built.
