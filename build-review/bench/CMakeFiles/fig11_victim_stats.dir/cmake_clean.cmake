file(REMOVE_RECURSE
  "CMakeFiles/fig11_victim_stats.dir/fig11_victim_stats.cc.o"
  "CMakeFiles/fig11_victim_stats.dir/fig11_victim_stats.cc.o.d"
  "fig11_victim_stats"
  "fig11_victim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_victim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
