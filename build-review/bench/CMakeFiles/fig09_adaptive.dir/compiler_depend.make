# Empty compiler generated dependencies file for fig09_adaptive.
# This may be replaced when dependencies are built.
