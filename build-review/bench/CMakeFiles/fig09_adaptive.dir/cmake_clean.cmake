file(REMOVE_RECURSE
  "CMakeFiles/fig09_adaptive.dir/fig09_adaptive.cc.o"
  "CMakeFiles/fig09_adaptive.dir/fig09_adaptive.cc.o.d"
  "fig09_adaptive"
  "fig09_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
