# Empty compiler generated dependencies file for abl_block_vs_variable.
# This may be replaced when dependencies are built.
