file(REMOVE_RECURSE
  "CMakeFiles/abl_block_vs_variable.dir/abl_block_vs_variable.cc.o"
  "CMakeFiles/abl_block_vs_variable.dir/abl_block_vs_variable.cc.o.d"
  "abl_block_vs_variable"
  "abl_block_vs_variable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_block_vs_variable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
