file(REMOVE_RECURSE
  "CMakeFiles/fig08_overlap.dir/fig08_overlap.cc.o"
  "CMakeFiles/fig08_overlap.dir/fig08_overlap.cc.o.d"
  "fig08_overlap"
  "fig08_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
