# Empty dependencies file for fig08_overlap.
# This may be replaced when dependencies are built.
