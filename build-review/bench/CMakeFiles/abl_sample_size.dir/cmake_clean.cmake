file(REMOVE_RECURSE
  "CMakeFiles/abl_sample_size.dir/abl_sample_size.cc.o"
  "CMakeFiles/abl_sample_size.dir/abl_sample_size.cc.o.d"
  "abl_sample_size"
  "abl_sample_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sample_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
