# Empty dependencies file for abl_sample_size.
# This may be replaced when dependencies are built.
