file(REMOVE_RECURSE
  "CMakeFiles/fig02_bh_locality.dir/fig02_bh_locality.cc.o"
  "CMakeFiles/fig02_bh_locality.dir/fig02_bh_locality.cc.o.d"
  "fig02_bh_locality"
  "fig02_bh_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_bh_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
