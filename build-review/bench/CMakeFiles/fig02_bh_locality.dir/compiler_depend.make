# Empty compiler generated dependencies file for fig02_bh_locality.
# This may be replaced when dependencies are built.
