file(REMOVE_RECURSE
  "CMakeFiles/fig17_lcc_weak_scaling.dir/fig17_lcc_weak_scaling.cc.o"
  "CMakeFiles/fig17_lcc_weak_scaling.dir/fig17_lcc_weak_scaling.cc.o.d"
  "fig17_lcc_weak_scaling"
  "fig17_lcc_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_lcc_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
