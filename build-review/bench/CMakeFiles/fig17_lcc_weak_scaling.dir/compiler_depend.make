# Empty compiler generated dependencies file for fig17_lcc_weak_scaling.
# This may be replaced when dependencies are built.
