# Empty compiler generated dependencies file for fig16_lcc_stats.
# This may be replaced when dependencies are built.
