file(REMOVE_RECURSE
  "CMakeFiles/fig16_lcc_stats.dir/fig16_lcc_stats.cc.o"
  "CMakeFiles/fig16_lcc_stats.dir/fig16_lcc_stats.cc.o.d"
  "fig16_lcc_stats"
  "fig16_lcc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_lcc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
