# Empty compiler generated dependencies file for fig18_lcc_weak_stats.
# This may be replaced when dependencies are built.
