file(REMOVE_RECURSE
  "CMakeFiles/fig18_lcc_weak_stats.dir/fig18_lcc_weak_stats.cc.o"
  "CMakeFiles/fig18_lcc_weak_stats.dir/fig18_lcc_weak_stats.cc.o.d"
  "fig18_lcc_weak_stats"
  "fig18_lcc_weak_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_lcc_weak_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
