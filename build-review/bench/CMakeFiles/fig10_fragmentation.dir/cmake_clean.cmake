file(REMOVE_RECURSE
  "CMakeFiles/fig10_fragmentation.dir/fig10_fragmentation.cc.o"
  "CMakeFiles/fig10_fragmentation.dir/fig10_fragmentation.cc.o.d"
  "fig10_fragmentation"
  "fig10_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
