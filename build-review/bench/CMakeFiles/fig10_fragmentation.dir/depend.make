# Empty dependencies file for fig10_fragmentation.
# This may be replaced when dependencies are built.
