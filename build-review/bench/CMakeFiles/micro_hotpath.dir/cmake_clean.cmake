file(REMOVE_RECURSE
  "CMakeFiles/micro_hotpath.dir/micro_hotpath.cc.o"
  "CMakeFiles/micro_hotpath.dir/micro_hotpath.cc.o.d"
  "micro_hotpath"
  "micro_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
