# Empty dependencies file for abl_cuckoo_arity.
# This may be replaced when dependencies are built.
