file(REMOVE_RECURSE
  "CMakeFiles/abl_cuckoo_arity.dir/abl_cuckoo_arity.cc.o"
  "CMakeFiles/abl_cuckoo_arity.dir/abl_cuckoo_arity.cc.o.d"
  "abl_cuckoo_arity"
  "abl_cuckoo_arity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cuckoo_arity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
