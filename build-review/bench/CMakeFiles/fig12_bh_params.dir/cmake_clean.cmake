file(REMOVE_RECURSE
  "CMakeFiles/fig12_bh_params.dir/fig12_bh_params.cc.o"
  "CMakeFiles/fig12_bh_params.dir/fig12_bh_params.cc.o.d"
  "fig12_bh_params"
  "fig12_bh_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_bh_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
