# Empty compiler generated dependencies file for fig12_bh_params.
# This may be replaced when dependencies are built.
