# Empty compiler generated dependencies file for fig14_bh_weak_scaling.
# This may be replaced when dependencies are built.
