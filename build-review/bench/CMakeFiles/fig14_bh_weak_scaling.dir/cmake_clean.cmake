file(REMOVE_RECURSE
  "CMakeFiles/fig14_bh_weak_scaling.dir/fig14_bh_weak_scaling.cc.o"
  "CMakeFiles/fig14_bh_weak_scaling.dir/fig14_bh_weak_scaling.cc.o.d"
  "fig14_bh_weak_scaling"
  "fig14_bh_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_bh_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
