file(REMOVE_RECURSE
  "CMakeFiles/clampi_datatype.dir/datatype.cc.o"
  "CMakeFiles/clampi_datatype.dir/datatype.cc.o.d"
  "libclampi_datatype.a"
  "libclampi_datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
