file(REMOVE_RECURSE
  "libclampi_datatype.a"
)
