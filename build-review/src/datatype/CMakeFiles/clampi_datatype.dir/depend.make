# Empty dependencies file for clampi_datatype.
# This may be replaced when dependencies are built.
