file(REMOVE_RECURSE
  "libclampi_netmodel.a"
)
