# Empty compiler generated dependencies file for clampi_netmodel.
# This may be replaced when dependencies are built.
