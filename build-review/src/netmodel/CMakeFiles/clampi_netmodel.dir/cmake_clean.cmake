file(REMOVE_RECURSE
  "CMakeFiles/clampi_netmodel.dir/hierarchy.cc.o"
  "CMakeFiles/clampi_netmodel.dir/hierarchy.cc.o.d"
  "libclampi_netmodel.a"
  "libclampi_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
