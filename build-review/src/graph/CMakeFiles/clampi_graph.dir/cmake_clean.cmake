file(REMOVE_RECURSE
  "CMakeFiles/clampi_graph.dir/lcc.cc.o"
  "CMakeFiles/clampi_graph.dir/lcc.cc.o.d"
  "CMakeFiles/clampi_graph.dir/pagerank.cc.o"
  "CMakeFiles/clampi_graph.dir/pagerank.cc.o.d"
  "CMakeFiles/clampi_graph.dir/rmat.cc.o"
  "CMakeFiles/clampi_graph.dir/rmat.cc.o.d"
  "libclampi_graph.a"
  "libclampi_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
