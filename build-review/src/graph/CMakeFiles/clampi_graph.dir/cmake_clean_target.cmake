file(REMOVE_RECURSE
  "libclampi_graph.a"
)
