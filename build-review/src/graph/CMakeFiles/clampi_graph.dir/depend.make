# Empty dependencies file for clampi_graph.
# This may be replaced when dependencies are built.
