file(REMOVE_RECURSE
  "CMakeFiles/clampi_bh.dir/native_cache.cc.o"
  "CMakeFiles/clampi_bh.dir/native_cache.cc.o.d"
  "CMakeFiles/clampi_bh.dir/octree.cc.o"
  "CMakeFiles/clampi_bh.dir/octree.cc.o.d"
  "CMakeFiles/clampi_bh.dir/solver.cc.o"
  "CMakeFiles/clampi_bh.dir/solver.cc.o.d"
  "libclampi_bh.a"
  "libclampi_bh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_bh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
