file(REMOVE_RECURSE
  "libclampi_bh.a"
)
