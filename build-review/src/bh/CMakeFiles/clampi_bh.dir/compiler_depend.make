# Empty compiler generated dependencies file for clampi_bh.
# This may be replaced when dependencies are built.
