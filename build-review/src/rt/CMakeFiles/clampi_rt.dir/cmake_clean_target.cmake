file(REMOVE_RECURSE
  "libclampi_rt.a"
)
