# Empty dependencies file for clampi_rt.
# This may be replaced when dependencies are built.
