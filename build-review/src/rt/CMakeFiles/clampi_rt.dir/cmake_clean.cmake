file(REMOVE_RECURSE
  "CMakeFiles/clampi_rt.dir/engine.cc.o"
  "CMakeFiles/clampi_rt.dir/engine.cc.o.d"
  "libclampi_rt.a"
  "libclampi_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
