file(REMOVE_RECURSE
  "libclampi_metrics.a"
)
