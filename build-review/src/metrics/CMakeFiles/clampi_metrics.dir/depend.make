# Empty dependencies file for clampi_metrics.
# This may be replaced when dependencies are built.
