file(REMOVE_RECURSE
  "CMakeFiles/clampi_metrics.dir/stats.cc.o"
  "CMakeFiles/clampi_metrics.dir/stats.cc.o.d"
  "libclampi_metrics.a"
  "libclampi_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
