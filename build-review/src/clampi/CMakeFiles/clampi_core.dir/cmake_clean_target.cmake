file(REMOVE_RECURSE
  "libclampi_core.a"
)
