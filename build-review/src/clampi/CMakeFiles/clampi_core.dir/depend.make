# Empty dependencies file for clampi_core.
# This may be replaced when dependencies are built.
