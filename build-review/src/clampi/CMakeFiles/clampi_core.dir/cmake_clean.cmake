file(REMOVE_RECURSE
  "CMakeFiles/clampi_core.dir/adaptive.cc.o"
  "CMakeFiles/clampi_core.dir/adaptive.cc.o.d"
  "CMakeFiles/clampi_core.dir/cache.cc.o"
  "CMakeFiles/clampi_core.dir/cache.cc.o.d"
  "CMakeFiles/clampi_core.dir/info.cc.o"
  "CMakeFiles/clampi_core.dir/info.cc.o.d"
  "CMakeFiles/clampi_core.dir/storage.cc.o"
  "CMakeFiles/clampi_core.dir/storage.cc.o.d"
  "CMakeFiles/clampi_core.dir/trace.cc.o"
  "CMakeFiles/clampi_core.dir/trace.cc.o.d"
  "CMakeFiles/clampi_core.dir/window.cc.o"
  "CMakeFiles/clampi_core.dir/window.cc.o.d"
  "libclampi_core.a"
  "libclampi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
