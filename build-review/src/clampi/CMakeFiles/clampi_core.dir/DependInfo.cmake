
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clampi/adaptive.cc" "src/clampi/CMakeFiles/clampi_core.dir/adaptive.cc.o" "gcc" "src/clampi/CMakeFiles/clampi_core.dir/adaptive.cc.o.d"
  "/root/repo/src/clampi/cache.cc" "src/clampi/CMakeFiles/clampi_core.dir/cache.cc.o" "gcc" "src/clampi/CMakeFiles/clampi_core.dir/cache.cc.o.d"
  "/root/repo/src/clampi/info.cc" "src/clampi/CMakeFiles/clampi_core.dir/info.cc.o" "gcc" "src/clampi/CMakeFiles/clampi_core.dir/info.cc.o.d"
  "/root/repo/src/clampi/storage.cc" "src/clampi/CMakeFiles/clampi_core.dir/storage.cc.o" "gcc" "src/clampi/CMakeFiles/clampi_core.dir/storage.cc.o.d"
  "/root/repo/src/clampi/trace.cc" "src/clampi/CMakeFiles/clampi_core.dir/trace.cc.o" "gcc" "src/clampi/CMakeFiles/clampi_core.dir/trace.cc.o.d"
  "/root/repo/src/clampi/window.cc" "src/clampi/CMakeFiles/clampi_core.dir/window.cc.o" "gcc" "src/clampi/CMakeFiles/clampi_core.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/rt/CMakeFiles/clampi_rt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/datatype/CMakeFiles/clampi_datatype.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fault/CMakeFiles/clampi_fault.dir/DependInfo.cmake"
  "/root/repo/build-review/src/netmodel/CMakeFiles/clampi_netmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
