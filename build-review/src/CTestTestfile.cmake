# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netmodel")
subdirs("fault")
subdirs("rt")
subdirs("datatype")
subdirs("metrics")
subdirs("clampi")
subdirs("bh")
subdirs("graph")
