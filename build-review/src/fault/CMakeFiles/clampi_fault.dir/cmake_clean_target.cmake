file(REMOVE_RECURSE
  "libclampi_fault.a"
)
