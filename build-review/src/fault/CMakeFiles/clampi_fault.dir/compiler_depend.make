# Empty compiler generated dependencies file for clampi_fault.
# This may be replaced when dependencies are built.
