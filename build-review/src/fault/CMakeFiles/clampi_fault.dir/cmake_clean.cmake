file(REMOVE_RECURSE
  "CMakeFiles/clampi_fault.dir/fault.cc.o"
  "CMakeFiles/clampi_fault.dir/fault.cc.o.d"
  "CMakeFiles/clampi_fault.dir/injector.cc.o"
  "CMakeFiles/clampi_fault.dir/injector.cc.o.d"
  "CMakeFiles/clampi_fault.dir/plan.cc.o"
  "CMakeFiles/clampi_fault.dir/plan.cc.o.d"
  "libclampi_fault.a"
  "libclampi_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clampi_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
