# Empty dependencies file for remote_kv.
# This may be replaced when dependencies are built.
