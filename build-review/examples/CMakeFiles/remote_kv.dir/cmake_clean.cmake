file(REMOVE_RECURSE
  "CMakeFiles/remote_kv.dir/remote_kv.cpp.o"
  "CMakeFiles/remote_kv.dir/remote_kv.cpp.o.d"
  "remote_kv"
  "remote_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
