# Empty dependencies file for lcc_graph.
# This may be replaced when dependencies are built.
