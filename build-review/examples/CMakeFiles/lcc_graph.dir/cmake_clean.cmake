file(REMOVE_RECURSE
  "CMakeFiles/lcc_graph.dir/lcc_graph.cpp.o"
  "CMakeFiles/lcc_graph.dir/lcc_graph.cpp.o.d"
  "lcc_graph"
  "lcc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
