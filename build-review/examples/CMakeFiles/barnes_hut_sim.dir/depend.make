# Empty dependencies file for barnes_hut_sim.
# This may be replaced when dependencies are built.
