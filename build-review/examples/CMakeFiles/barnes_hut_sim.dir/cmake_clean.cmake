file(REMOVE_RECURSE
  "CMakeFiles/barnes_hut_sim.dir/barnes_hut_sim.cpp.o"
  "CMakeFiles/barnes_hut_sim.dir/barnes_hut_sim.cpp.o.d"
  "barnes_hut_sim"
  "barnes_hut_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barnes_hut_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
