# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_remote_kv "/root/repo/build-review/examples/remote_kv")
set_tests_properties(example_remote_kv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_barnes_hut "/root/repo/build-review/examples/barnes_hut_sim" "800" "2")
set_tests_properties(example_barnes_hut PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lcc "/root/repo/build-review/examples/lcc_graph" "10" "8")
set_tests_properties(example_lcc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pagerank "/root/repo/build-review/examples/pagerank" "10" "3")
set_tests_properties(example_pagerank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_explorer "/root/repo/build-review/examples/cache_explorer")
set_tests_properties(example_cache_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
