// Example: Barnes-Hut N-body simulation with CLaMPI (paper Sec. IV-B).
//
// Runs a short simulation on 8 simulated ranks twice — once with plain
// RMA gets (the foMPI baseline) and once with CLaMPI in user-defined mode
// (the cache is explicitly invalidated when each force phase's read-only
// epoch sequence ends, exactly like Listing 1 of the paper) — and prints
// the per-step force-computation time and cache statistics.
//
// Usage: barnes_hut_sim [nbodies] [steps]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bh/solver.h"
#include "netmodel/hierarchy.h"
#include "rt/engine.h"

using namespace clampi;

namespace {

void simulate(const char* label, bh::CacheBackend backend, std::size_t nbodies,
              int steps) {
  rmasim::Engine::Config ecfg;
  ecfg.nranks = 8;
  ecfg.model = net::make_aries_model();
  ecfg.time_policy = rmasim::TimePolicy::kMeasured;

  // All ranks must share one body set (they are threads of one simulation).
  auto shared = std::make_shared<bh::SharedBodies>(nbodies, /*seed=*/99);

  rmasim::Engine engine(ecfg);
  engine.run([&](rmasim::Process& p) {
    bh::SolverConfig cfg;
    cfg.nbodies = shared->pos.size();
    cfg.theta = 0.5;
    cfg.dt = 0.01;
    cfg.backend = backend;
    cfg.clampi_cfg.mode = Mode::kUserDefined;
    cfg.clampi_cfg.index_entries = 16 << 10;
    cfg.clampi_cfg.storage_bytes = 2 << 20;
    bh::DistributedBarnesHut solver(p, shared, cfg);

    for (int s = 0; s < steps; ++s) {
      const auto rep = solver.step();
      double worst = rep.force_us;
      p.allreduce_f64(&rep.force_us, &worst, 1, rmasim::ReduceOp::kMax);
      if (p.rank() == 0) {
        std::printf("%-8s step %d: force phase %9.1f us (%zu tree nodes, %llu remote gets)\n",
                    label, s, worst, rep.tree_nodes,
                    static_cast<unsigned long long>(rep.remote_gets));
      }
    }
    if (p.rank() == 0) {
      if (const auto* st = solver.clampi_stats()) {
        std::printf("%-8s cache: %.1f%% hits, %llu invalidations (one per step)\n", label,
                    100.0 * st->hit_ratio(),
                    static_cast<unsigned long long>(st->invalidations));
      }
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nbodies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 3;
  std::printf("Barnes-Hut, %zu bodies, 8 ranks, %d steps\n", nbodies, steps);
  simulate("foMPI", bh::CacheBackend::kNone, nbodies, steps);
  simulate("CLaMPI", bh::CacheBackend::kClampi, nbodies, steps);
  return 0;
}
