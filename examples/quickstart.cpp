// Quickstart: transparent RMA caching in ~60 lines.
//
// Two simulated ranks; rank 0 repeatedly reads a table exposed by rank 1.
// The first read of each row goes over the (modelled) network; every
// repeat is served from CLaMPI's cache by a local memcpy. The printed
// virtual times show the three-orders-of-magnitude gap the paper's Fig. 1
// is about — and how caching closes it.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "clampi/clampi.h"
#include "netmodel/hierarchy.h"
#include "rt/engine.h"

using namespace clampi;

int main() {
  rmasim::Engine::Config ecfg;
  ecfg.nranks = 2;
  ecfg.model = net::make_aries_model();  // Piz-Daint-like latencies
  ecfg.time_policy = rmasim::TimePolicy::kModeled;

  rmasim::Engine engine(ecfg);
  engine.run([](rmasim::Process& p) {
    constexpr std::size_t kRows = 256;
    constexpr std::size_t kRowBytes = 1024;

    // Collective window creation; rank 1's memory holds the table.
    void* base = nullptr;
    Config cfg;
    cfg.mode = Mode::kAlwaysCache;  // the table is read-only: never invalidate
    cfg.index_entries = 1024;       // |I_w|
    cfg.storage_bytes = 1 << 20;    // |S_w|
    auto win = CachedWindow::allocate(p, kRows * kRowBytes, &base, cfg);

    if (p.rank() == 1) {
      auto* table = static_cast<unsigned char*>(base);
      for (std::size_t i = 0; i < kRows * kRowBytes; ++i) {
        table[i] = static_cast<unsigned char>(i % 251);
      }
    }
    p.barrier();

    if (p.rank() == 0) {
      std::vector<unsigned char> row(kRowBytes);
      win.lock_all();

      // Data-dependent access pattern: each row is consumed before the
      // next request is issued (get + flush per row).
      const double t0 = p.now_us();
      for (std::size_t r = 0; r < kRows; ++r) {
        win.get(row.data(), kRowBytes, /*target=*/1, /*disp=*/r * kRowBytes);
        win.flush_all();  // miss: pays the network round trip
      }
      const double cold_us = p.now_us() - t0;

      const double t1 = p.now_us();
      for (std::size_t r = 0; r < kRows; ++r) {
        win.get(row.data(), kRowBytes, 1, r * kRowBytes);  // hit: local memcpy
        win.flush_all();
      }
      const double warm_us = p.now_us() - t1;

      const auto& st = win.stats();
      std::printf("cold pass: %8.1f us  (%zu remote gets)\n", cold_us, kRows);
      std::printf("warm pass: %8.1f us  (served from cache)\n", warm_us);
      std::printf("speedup:   %8.1fx\n", cold_us / warm_us);
      std::printf("stats: %llu gets, %llu hits, %llu misses, %.1f%% hit ratio\n",
                  static_cast<unsigned long long>(st.total_gets),
                  static_cast<unsigned long long>(st.hitting()),
                  static_cast<unsigned long long>(st.direct),
                  100.0 * st.hit_ratio());
      win.unlock_all();
    }
    p.barrier();
    win.free_window();
  });
  return 0;
}
