// Example: distributed PageRank with CLaMPI in user-defined (BSP) mode.
//
// Each iteration is a read-only phase (remote scores are pulled through
// the cache, hub scores are heavily reused) followed by a write phase
// (scores update, cache invalidated) — the Sec. III-A BSP pattern.
//
// Usage: pagerank [scale] [iterations]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "graph/pagerank.h"
#include "netmodel/hierarchy.h"
#include "rt/engine.h"

using namespace clampi;

namespace {

void run(const char* label, std::shared_ptr<const graph::Csr> g, graph::PrBackend backend,
         int iterations, std::vector<double>* out) {
  rmasim::Engine::Config ecfg;
  ecfg.nranks = 8;
  ecfg.model = net::make_aries_model();
  ecfg.time_policy = rmasim::TimePolicy::kMeasured;

  rmasim::Engine engine(ecfg);
  engine.run([&](rmasim::Process& p) {
    graph::PagerankConfig cfg;
    cfg.iterations = iterations;
    cfg.backend = backend;
    cfg.clampi_cfg.index_entries = 1 << 15;
    cfg.clampi_cfg.storage_bytes = 8 << 20;
    graph::DistributedPagerank solver(p, g, cfg);
    const auto rep = solver.run();
    for (graph::Vertex v = solver.first_vertex(); v < solver.last_vertex(); ++v) {
      (*out)[v] = solver.local_scores()[v - solver.first_vertex()];
    }
    double worst_comm = rep.comm_us;
    p.allreduce_f64(&rep.comm_us, &worst_comm, 1, rmasim::ReduceOp::kMax);
    if (p.rank() == 0) {
      std::printf("%-8s comm %10.1f us", label, worst_comm);
      if (const auto* st = solver.clampi_stats()) {
        std::printf("  (%.1f%% hits, %llu invalidations = iterations)",
                    100.0 * st->hit_ratio(),
                    static_cast<unsigned long long>(st->invalidations));
      }
      std::printf("\n");
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  graph::RmatParams params;
  params.scale = argc > 1 ? std::atoi(argv[1]) : 12;
  params.edge_factor = 16;
  params.seed = 11;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 5;

  auto g = std::make_shared<graph::Csr>(graph::rmat_graph(params));
  std::printf("PageRank, R-MAT scale %d (%zu vertices), %d iterations, 8 ranks\n",
              params.scale, g->num_vertices(), iterations);

  std::vector<double> base(g->num_vertices()), cached(g->num_vertices());
  run("foMPI", g, graph::PrBackend::kNone, iterations, &base);
  run("CLaMPI", g, graph::PrBackend::kClampi, iterations, &cached);

  const auto ref = graph::pagerank_reference(*g, 0.85, iterations);
  double max_err = 0.0;
  for (std::size_t v = 0; v < ref.size(); ++v) {
    max_err = std::max({max_err, std::abs(base[v] - ref[v]), std::abs(cached[v] - ref[v])});
  }
  std::printf("max deviation from serial reference: %.3g %s\n", max_err,
              max_err < 1e-12 ? "(exact)" : "(MISMATCH!)");

  // Top-5 vertices.
  std::vector<graph::Vertex> order(ref.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<graph::Vertex>(i);
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](auto a, auto b) { return ref[a] > ref[b]; });
  std::printf("top vertices:");
  for (int i = 0; i < 5; ++i) std::printf(" %u(%.2e)", order[i], ref[order[i]]);
  std::printf("\n");
  return 0;
}
