// Example: distributed Local Clustering Coefficient with CLaMPI
// (paper Sec. IV-C).
//
// Generates an R-MAT graph, partitions it over 16 simulated ranks and
// computes every vertex's clustering coefficient, comparing plain RMA
// gets against CLaMPI in always-cache mode (the graph is immutable, so
// the cache is never invalidated). Results are verified against the
// serial reference.
//
// Usage: lcc_graph [scale] [edge_factor]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "graph/lcc.h"
#include "graph/rmat.h"
#include "netmodel/hierarchy.h"
#include "rt/engine.h"

using namespace clampi;

namespace {

double run(const char* label, std::shared_ptr<const graph::Csr> g, bool use_clampi) {
  rmasim::Engine::Config ecfg;
  ecfg.nranks = 16;
  ecfg.model = net::make_aries_model();
  ecfg.time_policy = rmasim::TimePolicy::kMeasured;

  auto total_sum = std::make_shared<double>(0.0);
  rmasim::Engine engine(ecfg);
  engine.run([&](rmasim::Process& p) {
    graph::LccConfig cfg;
    cfg.backend = use_clampi ? graph::LccBackend::kClampi : graph::LccBackend::kNone;
    cfg.clampi_cfg.mode = Mode::kAlwaysCache;
    cfg.clampi_cfg.index_entries = 32 << 10;
    cfg.clampi_cfg.storage_bytes = 8 << 20;
    cfg.clampi_cfg.adaptive = true;  // let CLaMPI size itself
    graph::DistributedLcc solver(p, g, cfg);
    const auto rep = solver.run();

    double worst = rep.compute_us;
    p.allreduce_f64(&rep.compute_us, &worst, 1, rmasim::ReduceOp::kMax);
    double sum = rep.lcc_sum;
    p.allreduce_f64(&rep.lcc_sum, &sum, 1, rmasim::ReduceOp::kSum);
    if (p.rank() == 0) {
      *total_sum = sum;
      std::printf("%-8s %10.1f us", label, worst);
      if (const auto* st = solver.clampi_stats()) {
        std::printf("  (%.1f%% hits, |I_w|=%zu, |S_w|=%.1f MB, %llu adjustments)",
                    100.0 * st->hit_ratio(), solver.clampi_index_entries(),
                    static_cast<double>(solver.clampi_storage_bytes()) / (1 << 20),
                    static_cast<unsigned long long>(st->adjustments));
      }
      std::printf("\n");
    }
  });
  return *total_sum;
}

}  // namespace

int main(int argc, char** argv) {
  graph::RmatParams params;
  params.scale = argc > 1 ? std::atoi(argv[1]) : 13;
  params.edge_factor = argc > 2 ? std::atoi(argv[2]) : 16;
  params.seed = 7;

  auto g = std::make_shared<graph::Csr>(graph::rmat_graph(params));
  std::printf("R-MAT scale %d: %zu vertices, %zu undirected edges\n", params.scale,
              g->num_vertices(), g->num_undirected_edges());

  const double base = run("foMPI", g, false);
  const double cached = run("CLaMPI", g, true);

  // Cross-check both runs against the serial reference.
  const auto ref = graph::lcc_reference(*g);
  double ref_sum = 0.0;
  for (const double c : ref) ref_sum += c;
  std::printf("LCC checksum: reference=%.6f foMPI=%.6f CLaMPI=%.6f %s\n", ref_sum, base,
              cached,
              (std::abs(base - ref_sum) < 1e-6 && std::abs(cached - ref_sum) < 1e-6)
                  ? "(all agree)"
                  : "(MISMATCH!)");
  return 0;
}
