// Example: a read-mostly replicated key-value lookup service.
//
// Demonstrates the *user-defined* operational mode (paper Sec. III-A,
// Listing 1) on a workload the paper's introduction motivates: irregular,
// data-dependent remote reads with occasional write phases.
//
// 8 ranks each own a shard of a fixed-size-record store. Readers perform
// skewed random lookups through CLaMPI; periodically the owners update
// their shards (a write epoch), after which every reader calls
// clampi_invalidate() — exactly the Listing 1 pattern — and the caches
// repopulate.
#include <cstdio>
#include <cstring>
#include <vector>

#include "clampi/clampi.h"
#include "netmodel/hierarchy.h"
#include "rt/engine.h"
#include "util/rng.h"

using namespace clampi;

namespace {
constexpr std::size_t kRecordBytes = 128;
constexpr std::size_t kRecordsPerShard = 2048;
constexpr int kPhases = 4;
constexpr int kLookupsPerPhase = 4000;

void fill_shard(std::byte* shard, int owner, int version) {
  for (std::size_t r = 0; r < kRecordsPerShard; ++r) {
    auto* rec = reinterpret_cast<std::uint32_t*>(shard + r * kRecordBytes);
    rec[0] = static_cast<std::uint32_t>(owner);
    rec[1] = static_cast<std::uint32_t>(r);
    rec[2] = static_cast<std::uint32_t>(version);
  }
}
}  // namespace

int main() {
  rmasim::Engine::Config ecfg;
  ecfg.nranks = 8;
  ecfg.model = net::make_aries_model();
  ecfg.time_policy = rmasim::TimePolicy::kModeled;

  rmasim::Engine engine(ecfg);
  engine.run([](rmasim::Process& p) {
    Config cfg;
    cfg.mode = Mode::kUserDefined;  // read-only phases + explicit invalidation
    cfg.index_entries = 8 << 10;
    cfg.storage_bytes = 2 << 20;

    void* base = nullptr;
    auto win = CachedWindow::allocate(p, kRecordsPerShard * kRecordBytes, &base, cfg);
    auto* shard = static_cast<std::byte*>(base);

    util::Xoshiro256 rng(1000 + p.rank());
    std::vector<std::byte> rec(kRecordBytes);
    double read_us_total = 0.0;

    for (int phase = 0; phase < kPhases; ++phase) {
      // --- write epoch: owners update their shards in place ---
      fill_shard(shard, p.rank(), phase);
      p.barrier();

      // --- read-only epochs: skewed lookups, cached by CLaMPI ---
      win.lock_all();
      const double t0 = p.now_us();
      for (int i = 0; i < kLookupsPerPhase; ++i) {
        // Zipf-ish skew: a fourth power concentrates lookups on hot keys.
        const double u = rng.uniform();
        const auto key = static_cast<std::size_t>(u * u * u * u * kRecordsPerShard);
        const int owner = static_cast<int>(rng.bounded(p.nranks()));
        if (owner == p.rank()) continue;
        win.get(rec.data(), kRecordBytes, owner, key * kRecordBytes);
        win.flush(owner);
        const auto* v = reinterpret_cast<const std::uint32_t*>(rec.data());
        if (v[0] != static_cast<std::uint32_t>(owner) ||
            v[1] != static_cast<std::uint32_t>(key) ||
            v[2] != static_cast<std::uint32_t>(phase)) {
          std::fprintf(stderr, "STALE READ: phase %d owner %d key %zu got v%u\n", phase,
                       owner, key, v[2]);
          std::abort();
        }
      }
      read_us_total += p.now_us() - t0;

      // End of the read-only epoch sequence: Listing 1's invalidation.
      clampi_invalidate(win);
      win.unlock_all();
      p.barrier();
    }

    const auto& st = win.stats();
    double worst = read_us_total;
    p.allreduce_f64(&read_us_total, &worst, 1, rmasim::ReduceOp::kMax);
    if (p.rank() == 0) {
      std::printf("kv-store: %d phases x %d lookups, slowest reader %.1f us total\n",
                  kPhases, kLookupsPerPhase, worst);
      std::printf("cache: %.1f%% hits, %llu invalidations (one per write phase),"
                  " 0 stale reads\n",
                  100.0 * st.hit_ratio(),
                  static_cast<unsigned long long>(st.invalidations));
    }
    p.barrier();
    win.free_window();
  });
  return 0;
}
