// Example: a read-mostly distributed key-value lookup service on src/kv.
//
// Demonstrates the *user-defined* operational mode (paper Sec. III-A,
// Listing 1) through the kv::Store subsystem (docs/KV.md): 4 server ranks
// own bucket shards of a hashed key space behind a consistent-hash ring;
// 2 client ranks perform Zipf-skewed lookups through CLaMPI, so hot
// buckets become cache-resident. Periodically the owners rewrite every
// value in place (a write epoch, Store::reload) — after which every rank
// invalidates its cache, exactly the Listing 1 invalidate-on-write-epoch
// pattern — and the caches repopulate against the new generation.
//
// Every lookup is validated: values are self-describing (bucket.h), and
// after a reload to generation g each key must serve seq == g - 1. A
// stale read — cached bytes surviving the write epoch — would fail both
// checks and abort. The get/put serving mix with per-replica shadow
// tracking lives in the workload engine (src/kv/workload.h) and the
// kv_sweep bench; this example keeps to the paper's Listing 1 story.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "kv/store.h"
#include "netmodel/hierarchy.h"
#include "rt/engine.h"
#include "util/rng.h"
#include "util/skew.h"

using namespace clampi;

namespace {
constexpr int kServers = 4;
constexpr int kClients = 2;
constexpr std::uint64_t kKeys = std::uint64_t{1} << 15;
constexpr int kPhases = 4;
constexpr int kLookupsPerPhase = 3000;
}  // namespace

int main() {
  rmasim::Engine::Config ecfg;
  ecfg.nranks = kServers + kClients;
  ecfg.model = net::make_aries_model();
  ecfg.time_policy = rmasim::TimePolicy::kModeled;

  rmasim::Engine engine(ecfg);
  engine.run([](rmasim::Process& p) {
    kv::StoreConfig scfg;
    scfg.nkeys = kKeys;
    scfg.nservers = kServers;
    scfg.cache.mode = Mode::kUserDefined;  // epoch invalidation is ours
    scfg.cache.index_entries = 16 << 10;
    scfg.cache.storage_bytes = 8 << 20;
    kv::Store store(p, scfg);

    util::Xoshiro256 rng(1000 + p.rank());
    util::ZipfSampler zipf(kKeys, 0.99);
    std::vector<std::byte> value(scfg.layout.value_capacity);
    double read_us_total = 0.0;

    for (int phase = 0; phase < kPhases; ++phase) {
      // --- write epoch: owners rewrite their shards in place; reload()
      // ends with every rank's clampi_invalidate (Listing 1) ---
      if (phase > 0) store.reload(static_cast<std::uint64_t>(phase) + 1);

      // --- read-only epochs: skewed lookups, cached by CLaMPI ---
      if (p.rank() >= kServers) {
        store.window().lock_all();
        const double t0 = p.now_us();
        for (int i = 0; i < kLookupsPerPhase; ++i) {
          const std::uint64_t key = store.key_at(zipf(rng));
          kv::GetMeta m;
          if (!store.get(key, value.data(), &m)) {
            std::fprintf(stderr, "LOST KEY: phase %d\n", phase);
            std::abort();
          }
          // Self-describing values + generation stamps make staleness
          // visible: after reload(g) every serve must carry seq g - 1.
          if (m.seq != static_cast<std::uint32_t>(store.generation() - 1) ||
              !kv::check_value(key, m.seq, m.len, value.data())) {
            std::fprintf(stderr, "STALE READ: phase %d seq %u gen %llu\n", phase,
                         m.seq, static_cast<unsigned long long>(m.generation));
            std::abort();
          }
        }
        read_us_total += p.now_us() - t0;
        store.window().unlock_all();
      }
      p.barrier();
    }

    const Stats& st = store.window().stats();
    double worst = read_us_total;
    p.allreduce_f64(&read_us_total, &worst, 1, rmasim::ReduceOp::kMax);
    if (p.rank() == 0) {
      std::printf("kv-store: %d phases x %d lookups/client over %llu keys, "
                  "slowest reader %.1f us total\n",
                  kPhases, kLookupsPerPhase,
                  static_cast<unsigned long long>(kKeys), worst);
    }
    if (p.rank() == kServers) {  // one client reports its cache's view
      std::printf("client cache: %.1f%% hits, %llu bucket reads "
                  "(%llu chain follows), %llu invalidations, 0 stale reads\n",
                  100.0 * st.hit_ratio(),
                  static_cast<unsigned long long>(st.kv_bucket_reads),
                  static_cast<unsigned long long>(st.kv_chain_reads),
                  static_cast<unsigned long long>(st.invalidations));
    }
    p.barrier();
    store.free_window();
  });
  return 0;
}
