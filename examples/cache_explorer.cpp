// cache_explorer — an offline CLaMPI configuration explorer.
//
// Feeds a get trace (recorded from an application, or a synthetic
// micro-workload) through CacheCore under a grid of configurations and
// prints the resulting access statistics, so |I_w| / |S_w| / eviction
// policy can be tuned without re-running the application.
//
// Usage:
//   cache_explorer                            # built-in synthetic trace
//   cache_explorer trace.txt                  # replay a recorded trace
//   cache_explorer trace.txt 4096,16384 1M,8M # sweep |I_w| and |S_w|
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "clampi/health.h"
#include "clampi/info.h"
#include "clampi/trace.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "kv/store.h"
#include "kv/workload.h"
#include "netmodel/model.h"
#include "rt/engine.h"
#include "util/rng.h"

using namespace clampi;

namespace {

trace::Trace synthetic_trace() {
  // The Sec. IV-A micro-workload shape: 1K distinct gets, normal reuse.
  trace::Trace t;
  util::Xoshiro256 rng(1);
  std::vector<std::uint64_t> disp(1000);
  std::vector<std::uint64_t> size(1000);
  std::uint64_t cursor = 0;
  for (int i = 0; i < 1000; ++i) {
    size[i] = std::uint64_t{1} << rng.bounded(17);
    disp[i] = cursor;
    cursor += size[i];
  }
  for (int z = 0; z < 50000; ++z) {
    double g = 0;
    for (int k = 0; k < 12; ++k) g += rng.uniform();  // ~normal via CLT
    const auto i = static_cast<std::size_t>(
        std::min(999.0, std::max(0.0, (g - 6.0) / 3.0 * 250.0 + 500.0)));
    t.add_get(1, disp[i], size[i]);
    if (z % 16 == 15) t.add_flush_all();
  }
  t.add_flush_all();
  return t;
}

std::vector<std::string> split(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  trace::Trace t;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    t = trace::Trace::load(in);
  } else {
    t = synthetic_trace();
  }
  std::printf("trace: %zu gets, %zu distinct keys, %.2f MiB total, largest %llu B\n",
              t.num_gets(), t.distinct_keys(),
              static_cast<double>(t.total_bytes()) / (1 << 20),
              static_cast<unsigned long long>(t.max_bytes()));

  // Survivability preview: traces recorded with the health detector on
  // carry `h <target> <state>` annotations (docs/FAULTS.md §6). Replay
  // skips them; summarize them here so a recorded incident is visible.
  std::size_t health_events = 0, quarantines = 0, recoveries = 0;
  for (const auto& ev : t.events) {
    if (ev.kind != trace::Event::Kind::kHealth) continue;
    ++health_events;
    quarantines += ev.disp == static_cast<std::uint64_t>(HealthState::kQuarantined);
    recoveries += ev.disp == static_cast<std::uint64_t>(HealthState::kHealthy);
  }
  if (health_events > 0) {
    std::printf("health: %zu transitions (%zu quarantines, %zu recoveries)\n",
                health_events, quarantines, recoveries);
  }

  const auto index_sweep = split(argc > 2 ? argv[2] : "512,1024,2048,4096");
  const auto storage_sweep = split(argc > 3 ? argv[3] : "1M,4M,16M");

  std::printf("%-8s %-8s %-8s %7s %7s %7s %7s %7s %7s %7s %7s\n", "index", "storage",
              "score", "hit%", "partial", "direct", "confl", "capac", "fail",
              "prb/get", "fbin%");
  for (const auto& iw : index_sweep) {
    for (const auto& sw : storage_sweep) {
      for (const ScoreKind score :
           {ScoreKind::kFull, ScoreKind::kTemporal, ScoreKind::kPositional}) {
        Config cfg;
        cfg.mode = Mode::kAlwaysCache;
        cfg.index_entries = std::strtoull(iw.c_str(), nullptr, 10);
        cfg.storage_bytes = parse_size(sw);
        cfg.score = score;
        CacheCore core(cfg);
        const Stats st = trace::replay_core(t, core);
        const double total = static_cast<double>(st.total_gets ? st.total_gets : 1);
        const std::uint64_t allocs = st.storage_fastbin_allocs + st.storage_tree_allocs;
        std::printf("%-8s %-8s %-8s %6.1f%% %7.3f %7.3f %7.3f %7.3f %7.3f %7.2f %6.1f%%\n",
                    iw.c_str(), sw.c_str(), to_string(score), 100.0 * st.hit_ratio(),
                    static_cast<double>(st.hits_partial) / total,
                    static_cast<double>(st.direct) / total,
                    static_cast<double>(st.conflicting) / total,
                    static_cast<double>(st.capacity) / total,
                    static_cast<double>(st.failing) / total,
                    static_cast<double>(st.index_probes) / total,
                    100.0 * static_cast<double>(st.storage_fastbin_allocs) /
                        static_cast<double>(allocs ? allocs : 1));
      }
    }
  }

  // Integrity-guard preview: replay once more with hit-time verification
  // and scrubbing enabled (docs/INTEGRITY.md) so the checksum work a
  // deployment would pay is visible next to the plain numbers. Offline
  // replay has no bit rot, so detections must be zero.
  Config icfg;
  icfg.mode = Mode::kAlwaysCache;
  icfg.index_entries = std::strtoull(index_sweep.back().c_str(), nullptr, 10);
  icfg.storage_bytes = parse_size(storage_sweep.back());
  icfg.verify_every_n = 1;
  icfg.scrub_entries_per_epoch = 64;
  CacheCore icore(icfg);
  const Stats ist = trace::replay_core(t, icore);
  std::printf(
      "\nintegrity (verify_every_n=1, scrub=64/epoch at %s/%s):\n"
      "  checksum_verifications %llu, scrub_entries_scanned %llu,\n"
      "  corruption_detected %llu, self_heals %llu, scrub_corruptions %llu\n",
      index_sweep.back().c_str(), storage_sweep.back().c_str(),
      static_cast<unsigned long long>(ist.checksum_verifications),
      static_cast<unsigned long long>(ist.scrub_entries_scanned),
      static_cast<unsigned long long>(ist.corruption_detected),
      static_cast<unsigned long long>(ist.self_heals),
      static_cast<unsigned long long>(ist.scrub_corruptions));

  // Sharding preview: the same trace against a lock-striped core
  // (docs/PERF.md "Sharding"). Replay is single-threaded, so contended
  // must be zero — the interesting numbers are the per-get lock cost and
  // how many maintenance ops had to cross shards.
  Config ccfg;
  ccfg.mode = Mode::kAlwaysCache;
  ccfg.index_entries = std::strtoull(index_sweep.back().c_str(), nullptr, 10);
  ccfg.storage_bytes = parse_size(storage_sweep.back());
  ccfg.cache_shards = 8;
  if (ccfg.index_entries % ccfg.cache_shards == 0 &&
      ccfg.storage_bytes % ccfg.cache_shards == 0) {
    CacheCore ccore(ccfg);
    const Stats cst = trace::replay_core(t, ccore);
    const double cgets = static_cast<double>(cst.total_gets ? cst.total_gets : 1);
    std::printf(
        "\nsharding (cache_shards=8 at %s/%s):\n"
        "  shard_lock_acquisitions %llu (%.2f/get), shard_lock_contended %llu, "
        "cross_shard_ops %llu\n",
        index_sweep.back().c_str(), storage_sweep.back().c_str(),
        static_cast<unsigned long long>(cst.shard_lock_acquisitions),
        static_cast<double>(cst.shard_lock_acquisitions) / cgets,
        static_cast<unsigned long long>(cst.shard_lock_contended),
        static_cast<unsigned long long>(cst.cross_shard_ops));
  }

  // KV preview: the bucket-read shape a kv::Store workload would push
  // through these counters (docs/KV.md). A small in-simulator run — one
  // server pair, a few thousand Zipf ops — is enough to show bucket hits
  // vs chain follows and the put invalidation fan-out next to the trace
  // numbers above.
  {
    rmasim::Engine::Config ecfg;
    ecfg.nranks = 3;
    ecfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
    ecfg.time_policy = rmasim::TimePolicy::kModeled;
    rmasim::Engine engine(ecfg);
    engine.run([](rmasim::Process& p) {
      kv::StoreConfig scfg;
      scfg.nkeys = 4000;
      scfg.nservers = 2;
      scfg.load_factor = 1.4;  // oversubscribed so chain follows show up
      scfg.overflow_frac = 1.0;
      scfg.cache.mode = Mode::kUserDefined;
      scfg.cache.index_entries = 4096;
      scfg.cache.storage_bytes = 8 << 20;
      kv::Store store(p, scfg);
      if (p.rank() == 2) {
        kv::WorkloadConfig wcfg;
        wcfg.ops = 8000;
        wcfg.get_ratio = 0.9;
        wcfg.epoch_ops = 4000;
        kv::Driver driver(store, wcfg, /*client_index=*/0, /*nclients=*/1);
        const kv::WorkloadReport rep = driver.run(p);
        const Stats kst = store.window().stats();
        const double ops = static_cast<double>(kst.put_invalidation_ops
                                                   ? kst.put_invalidation_ops
                                                   : 1);
        std::printf(
            "\nkv preview (%llu Zipf ops, 90%% gets, mid-run epoch invalidation):\n"
            "  kv_bucket_reads %llu (hit %.1f%%), kv_chain_reads %llu, "
            "kv_version_rereads %llu,\n"
            "  put_invalidation_ops %llu dropping %llu entries "
            "(fan-out %.2f/op), mismatches %llu\n",
            static_cast<unsigned long long>(rep.attempted),
            static_cast<unsigned long long>(kst.kv_bucket_reads),
            100.0 * rep.hit_frac(),
            static_cast<unsigned long long>(kst.kv_chain_reads),
            static_cast<unsigned long long>(kst.kv_version_rereads),
            static_cast<unsigned long long>(kst.put_invalidation_ops),
            static_cast<unsigned long long>(kst.put_invalidations),
            static_cast<double>(kst.put_invalidations) / ops,
            static_cast<unsigned long long>(rep.mismatches));
      }
      p.barrier();
      store.free_window();
    });
  }

  // Convergence preview: the repair counters a faulted kv::Store run
  // pushes (docs/KV.md "Repair & convergence"). One client loses one of
  // the two replica servers for a window mid-run, so puts hint, then the
  // hint drain and anti-entropy scan reconcile the stale replica after
  // the partition heals (docs/FAULTS.md §7).
  {
    rmasim::Engine::Config ecfg;
    ecfg.nranks = 3;
    ecfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
    ecfg.time_policy = rmasim::TimePolicy::kModeled;
    fault::Plan plan;
    plan.partition_pair(/*origin=*/2, /*target=*/1, 20000.0, 50000.0);
    ecfg.injector = std::make_shared<fault::Injector>(plan);
    rmasim::Engine engine(ecfg);
    engine.run([](rmasim::Process& p) {
      kv::StoreConfig scfg;
      scfg.nkeys = 2000;
      scfg.nservers = 2;
      scfg.replication = 2;
      scfg.cache.mode = Mode::kUserDefined;
      scfg.cache.index_entries = 4096;
      scfg.cache.storage_bytes = 8 << 20;
      scfg.cache.health_failure_threshold = 3;
      scfg.cache.degraded_reads = true;
      scfg.cache.degraded_max_staleness_us = 1e9;
      scfg.hinted_handoff = true;
      scfg.hint_queue_cap = 2000;
      scfg.read_repair_every_n = 4;
      scfg.antientropy_keys_per_epoch = 500;
      kv::Store store(p, scfg);
      if (p.rank() == 2) {
        kv::WorkloadConfig wcfg;
        wcfg.ops = 12000;
        wcfg.get_ratio = 0.8;
        wcfg.epoch_ops = 3000;
        kv::Driver driver(store, wcfg, /*client_index=*/0, /*nclients=*/1);
        const kv::WorkloadReport rep = driver.run(p);
        if (p.now_us() < 52000.0) p.compute_us(52000.0 - p.now_us());
        store.window().lock_all();
        std::vector<std::byte> v(scfg.layout.value_capacity);
        for (std::uint64_t i = 0; i < 400; ++i) {
          kv::GetMeta m;
          store.get_uncached(store.key_at(i % scfg.nkeys), v.data(), &m);
          const clampi::TargetStatus ts = store.window().target_status(1);
          if (ts.usable && ts.state == clampi::HealthState::kHealthy) break;
        }
        store.drain_hints();
        for (int pass = 0; pass < 2 * 4; ++pass) store.anti_entropy_step();
        const kv::Store::ConvergenceReport conv = store.verify_convergence();
        store.window().unlock_all();
        const Stats kst = store.window().stats();
        std::printf(
            "\nconvergence preview (%llu ops, partition 20-50ms, hinted "
            "handoff + read-repair + anti-entropy, mismatches %llu):\n"
            "  kv_hints_queued %llu, kv_hints_drained %llu, "
            "kv_hints_dropped %llu,\n"
            "  kv_read_repairs %llu, kv_antientropy_repairs %llu, "
            "divergent after repair %llu/%llu\n",
            static_cast<unsigned long long>(rep.attempted),
            static_cast<unsigned long long>(rep.mismatches),
            static_cast<unsigned long long>(kst.kv_hints_queued),
            static_cast<unsigned long long>(kst.kv_hints_drained),
            static_cast<unsigned long long>(kst.kv_hints_dropped),
            static_cast<unsigned long long>(kst.kv_read_repairs),
            static_cast<unsigned long long>(kst.kv_antientropy_repairs),
            static_cast<unsigned long long>(conv.keys_divergent),
            static_cast<unsigned long long>(conv.keys_checked));
      }
      p.barrier();
      store.free_window();
    });
  }

  // Durability preview: the crash-restart counters (docs/DURABILITY.md).
  // Server 1 suffers a wiped-memory crash after every write acked (torn
  // journal tail certain); its recovery replays the write-ahead journal
  // and the client re-reads every acknowledged key to count real loss.
  {
    rmasim::Engine::Config ecfg;
    ecfg.nranks = 3;
    ecfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
    ecfg.time_policy = rmasim::TimePolicy::kModeled;
    fault::Plan plan;
    plan.crash_rank(/*rank=*/1, /*at_us=*/30000.0, /*restart_us=*/50000.0);
    plan.torn_writes(1.0);
    ecfg.injector = std::make_shared<fault::Injector>(plan);
    rmasim::Engine engine(ecfg);
    kv::StoreConfig scfg;
    scfg.nkeys = 1500;
    scfg.nservers = 2;
    scfg.replication = 1;
    scfg.cache.mode = Mode::kUserDefined;
    scfg.cache.index_entries = 4096;
    scfg.cache.storage_bytes = 8 << 20;
    scfg.group_commit_n = 4;
    scfg.devices = kv::Store::make_device_set(scfg);  // ONCE, outside run
    engine.run([scfg](rmasim::Process& p) {
      kv::Store store(p, scfg);
      const double end_us = 52000.0;
      std::vector<std::byte> v(scfg.layout.value_capacity);
      std::uint64_t acked = 0;
      if (p.rank() == 2) {
        store.window().lock_all();
        for (std::uint64_t i = 0; i < scfg.nkeys; ++i) {
          const std::uint64_t key = store.key_at(i);
          kv::fill_value(key, /*seq=*/1, 48, v.data());
          kv::PutMeta pm;
          if (store.put(key, 1, v.data(), 48, &pm) && pm.applied > 0) ++acked;
        }
        store.window().unlock_all();
      }
      p.barrier();  // every write acked, strictly before the crash
      if (p.rank() < scfg.nservers) {
        while (p.now_us() < end_us) {  // recovery runs inside crash_tick
          p.compute_us(500.0);
          store.crash_tick();
        }
      } else if (p.now_us() < end_us) {
        p.compute_us(end_us - p.now_us());
      }
      p.barrier();  // outage over, server 1 recovered
      if (p.rank() == 2) {
        store.window().lock_all();
        store.invalidate_cache();
        std::uint64_t lost = 0;
        for (std::uint64_t i = 0; i < scfg.nkeys; ++i) {
          const std::uint64_t key = store.key_at(i);
          kv::GetMeta gm;
          bool ok = false;
          for (int a = 0; a < 10 && !ok; ++a) {
            ok = store.get_uncached(key, v.data(), &gm);
            if (!ok) p.compute_us(1000.0);
          }
          if (!ok || gm.seq < 1 || !kv::check_value(key, gm.seq, gm.len, v.data())) {
            ++lost;
          }
        }
        store.window().unlock_all();
        std::printf(
            "\ndurability preview (crash+restart of server 1, torn tail, "
            "journal on):\n"
            "  acked %llu, lost after recovery %llu, crash_invalidations "
            "%llu\n",
            static_cast<unsigned long long>(acked),
            static_cast<unsigned long long>(lost),
            static_cast<unsigned long long>(
                store.window().stats().crash_invalidations));
      }
      p.barrier();
      if (p.rank() == 1) {
        const Stats kst = store.window().stats();
        std::printf(
            "  server 1: restarts_handled %d, kv_journal_replayed %llu, "
            "kv_torn_records_dropped %llu, kv_snapshot_loads %llu\n",
            store.crash_restarts_handled(),
            static_cast<unsigned long long>(kst.kv_journal_replayed),
            static_cast<unsigned long long>(kst.kv_torn_records_dropped),
            static_cast<unsigned long long>(kst.kv_snapshot_loads));
      }
      p.barrier();
      store.free_window();
    });
  }

  // Tail-latency preview: the counters the robustness layer pushes
  // (docs/FAULTS.md §8). Server 1 straggles 30x from 10ms with some
  // transient failures; hedged reads race its backup, deadline budgets
  // cut doomed retries, and the AIMD shedder reacts to the misses.
  {
    rmasim::Engine::Config ecfg;
    ecfg.nranks = 3;
    ecfg.model = std::make_shared<net::FlatModel>(2.0, 0.001);
    ecfg.time_policy = rmasim::TimePolicy::kModeled;
    fault::Plan plan;
    plan.slow_rank(/*rank=*/1, /*factor=*/30.0, /*from_us=*/10000.0);
    plan.fail_target(/*rank=*/1, 0.4);
    ecfg.injector = std::make_shared<fault::Injector>(plan);
    rmasim::Engine engine(ecfg);
    engine.run([](rmasim::Process& p) {
      kv::StoreConfig scfg;
      scfg.nkeys = 2000;
      scfg.nservers = 2;
      scfg.replication = 2;
      scfg.cache.mode = Mode::kUserDefined;
      scfg.cache.index_entries = 4096;
      scfg.cache.storage_bytes = 8 << 20;
      scfg.cache.max_retries = 1;
      scfg.cache.retry_backoff_us = 30.0;
      scfg.cache.retry_jitter = 0.0;
      scfg.cache.op_deadline_us = 60.0;
      scfg.cache.load_shedding = true;
      scfg.cache.shed_window_us = 500.0;
      scfg.cache.shed_miss_ratio = 0.05;
      scfg.cache.shed_decrease_factor = 0.5;
      scfg.cache.shed_increase = 0.1;
      scfg.cache.shed_min_admit = 0.2;
      scfg.hedge_quantile = 0.9;
      scfg.hedge_min_samples = 8;
      kv::Store store(p, scfg);
      if (p.rank() == 2) {
        // Feeds the per-target latency quantiles. Get-only: a second Driver
        // starts with a fresh shadow model, so any calm-phase put would make
        // the measured driver's exact own-key check see a seq it never wrote.
        kv::WorkloadConfig calm;
        calm.ops = 2000;
        calm.get_ratio = 1.0;
        calm.epoch_ops = 500;
        kv::Driver warmer(store, calm, /*client_index=*/0, /*nclients=*/1);
        warmer.run(p);
        if (p.now_us() < 10001.0) p.compute_us(10001.0 - p.now_us());
        kv::WorkloadConfig wcfg;
        wcfg.ops = 3000;
        wcfg.get_ratio = 0.8;
        wcfg.epoch_ops = 500;
        wcfg.seed = 0x74656cull;
        kv::Driver driver(store, wcfg, /*client_index=*/0, /*nclients=*/1);
        const kv::WorkloadReport rep = driver.run(p);
        const Stats kst = store.window().stats();
        std::printf(
            "\ntail preview (%llu ops, 30x straggler on server 1 + 40%% "
            "transients, 60us budgets, mismatches %llu):\n"
            "  slow_observations %llu, kv_hedged_gets %llu "
            "(wins %llu, wasted %llu),\n"
            "  deadline_misses %llu, ops_shed %llu, admit fraction %.2f\n",
            static_cast<unsigned long long>(rep.attempted),
            static_cast<unsigned long long>(rep.mismatches),
            static_cast<unsigned long long>(kst.slow_observations),
            static_cast<unsigned long long>(kst.kv_hedged_gets),
            static_cast<unsigned long long>(kst.kv_hedge_wins),
            static_cast<unsigned long long>(kst.kv_hedge_wasted),
            static_cast<unsigned long long>(kst.deadline_misses),
            static_cast<unsigned long long>(kst.ops_shed),
            store.window().admit_fraction());
      }
      p.barrier();
      store.free_window();
    });
  }
  return 0;
}
